//! Single-router-per-AS baseline models (paper §3.3, Table 2).
//!
//! Two baselines: plain **shortest AS-path** routing over the AS graph, and
//! **inferred-relationship policies** (customer > peer > provider
//! local-pref with valley-free exports). The paper uses them to show that
//! one router per AS — with or without relationship inference — cannot
//! predict observed routing: 23.5 % / 12.5 % agreement.

use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use crate::predict::{evaluate, Evaluation};
use quasar_bgpsim::policy::{Action, Policy, PolicyRule, RouteMatch};
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_topology::gao::{neighbor_kind, NeighborKind};
use quasar_topology::graph::AsGraph;
use quasar_topology::relationships::Relationships;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Local-pref for customer-learned routes in the relationship baseline.
pub const BASELINE_LP_CUSTOMER: u32 = 130;
/// Local-pref for peer-/sibling-/unknown-learned routes (paper fn. 2:
/// siblings and unknown edges are treated like peerings).
pub const BASELINE_LP_PEER: u32 = 80;
/// Local-pref for provider-learned routes.
pub const BASELINE_LP_PROVIDER: u32 = 60;
/// Valley-free export threshold: only routes with local-pref at or above
/// this (locally originated = 100, customer = 130) may reach peers and
/// providers.
pub const VALLEY_FREE_THRESHOLD: u32 = 100;

/// The shortest-path baseline: the initial model as-is (no policies), so
/// the decision process reduces to AS-path length + tie-break.
pub fn shortest_path_model(
    graph: &AsGraph,
    prefix_origins: &BTreeMap<Prefix, Asn>,
) -> AsRoutingModel {
    AsRoutingModel::initial(graph, prefix_origins)
}

/// The relationship baseline: one quasi-router per AS with local-pref
/// classes per inferred relationship and valley-free export filters.
// `expect`s below: every session touched comes from the graph's edge list,
// which `AsRoutingModel::initial` just materialized.
#[allow(clippy::expect_used)]
pub fn relationship_model(
    graph: &AsGraph,
    prefix_origins: &BTreeMap<Prefix, Asn>,
    rels: &Relationships,
) -> AsRoutingModel {
    let mut model = AsRoutingModel::initial(graph, prefix_origins);
    let edges: Vec<(Asn, Asn)> = graph.edges().collect();
    let mut rules = 0usize;
    for (a, b) in edges {
        for (us, them) in [(a, b), (b, a)] {
            let r_us = RouterId::new(us, 0);
            let r_them = RouterId::new(them, 0);
            let kind = neighbor_kind(rels, us, them);
            // Import at `us` from `them`.
            let lp = match kind {
                NeighborKind::Customer => BASELINE_LP_CUSTOMER,
                NeighborKind::Peer => BASELINE_LP_PEER,
                NeighborKind::Provider => BASELINE_LP_PROVIDER,
            };
            let mut import = Policy::permit_all();
            import.push(PolicyRule::new(RouteMatch::any(), Action::SetLocalPref(lp)));
            model
                .network_mut()
                .set_import_policy(r_us, r_them, import)
                .expect("edge session exists");
            rules += 1;
            // Export from `us` towards `them`: valley-free unless `them`
            // is our customer.
            if kind != NeighborKind::Customer {
                let mut export = Policy::permit_all();
                export.push(PolicyRule::new(
                    RouteMatch {
                        local_pref_below: Some(VALLEY_FREE_THRESHOLD),
                        ..RouteMatch::any()
                    },
                    Action::Deny,
                ));
                model
                    .network_mut()
                    .set_export_policy(r_us, r_them, export)
                    .expect("edge session exists");
                rules += 1;
            }
        }
    }
    model.note_rules_added(rules);
    model
}

/// One row of Table 2, as fractions of all evaluated routes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// "AS-Paths which agree" — exact best-route matches.
    pub agree: f64,
    /// Disagreements because the path never reached the AS.
    pub not_available: f64,
    /// Disagreements where a shorter path was selected instead.
    pub shorter_exists: f64,
    /// Disagreements lost in the final lowest-neighbor-id tie-break.
    pub tie_break: f64,
    /// Remaining disagreements (eliminated by policy steps).
    pub other: f64,
}

impl Table2Row {
    /// Derives the row from an evaluation.
    pub fn from_evaluation(ev: &Evaluation) -> Self {
        let total = ev.counts.total.max(1) as f64;
        Table2Row {
            agree: ev.counts.rib_out as f64 / total,
            not_available: ev.reasons[0] as f64 / total,
            shorter_exists: ev.reasons[1] as f64 / total,
            tie_break: ev.reasons[2] as f64 / total,
            other: ev.reasons[3] as f64 / total,
        }
    }

    /// Fraction of disagreements.
    pub fn disagree(&self) -> f64 {
        1.0 - self.agree
    }
}

/// Evaluates a baseline model against a dataset and summarizes it as a
/// Table 2 row.
pub fn table2_row(model: &AsRoutingModel, dataset: &Dataset) -> Table2Row {
    Table2Row::from_evaluation(&evaluate(model, dataset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observed::ObservedRoute;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_topology::relationships::Relationship;

    /// Diamond with a longer observed path: shortest-path baseline cannot
    /// match it.
    fn dataset() -> Dataset {
        let routes = vec![
            (&[1u32, 2, 3][..], 3u32, 0u32),
            (&[1, 4, 5, 3], 3, 0), // longer than the direct 1-2-3
        ];
        Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn shortest_path_baseline_partial_agreement() {
        let d = dataset();
        let g = d.as_graph();
        let m = shortest_path_model(&g, &d.prefixes());
        let row = table2_row(&m, &d);
        assert!(row.agree > 0.0 && row.agree < 1.0);
        assert!(
            (row.agree + row.not_available + row.shorter_exists + row.tie_break + row.other - 1.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn relationship_model_installs_policies() {
        let d = dataset();
        let g = d.as_graph();
        let mut rels = Relationships::default();
        rels.set(
            Asn(1),
            Asn(2),
            Relationship::CustomerProvider {
                customer: Asn(1),
                provider: Asn(2),
            },
        );
        let m = relationship_model(&g, &d.prefixes(), &rels);
        assert!(m.stats().policy_rules > 0);
        // Still evaluable.
        let row = table2_row(&m, &d);
        assert!(row.agree <= 1.0);
    }

    #[test]
    fn valley_free_filter_blocks_peer_to_peer() {
        // 1 -peer- 2, 2 -peer- 3, prefix at 1: AS3 must NOT learn the route
        // (peer route not exported to a peer).
        let routes = vec![(&[2u32, 1][..], 1u32, 0u32)];
        let d = Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }));
        let mut g = d.as_graph();
        g.add_edge(Asn(2), Asn(3));
        let mut rels = Relationships::default();
        rels.set(Asn(1), Asn(2), Relationship::PeerPeer);
        rels.set(Asn(2), Asn(3), Relationship::PeerPeer);
        let m = relationship_model(&g, &d.prefixes(), &rels);
        let res = m.simulate(Prefix::for_origin(Asn(1))).unwrap();
        assert!(res.best_route(RouterId::new(Asn(2), 0)).is_some());
        assert!(res.best_route(RouterId::new(Asn(3), 0)).is_none());
    }

    #[test]
    fn customer_preferred_over_shorter_peer_path() {
        // AS1 reaches prefix at AS4 via peer 4 directly (1 hop) or via
        // customer 2 then 4 (2 hops). Relationship policy prefers the
        // customer route despite its length.
        let routes = vec![(&[1u32, 2, 4][..], 4u32, 0u32), (&[1, 4], 4, 1)];
        let d = Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }));
        let g = d.as_graph();
        let mut rels = Relationships::default();
        rels.set(
            Asn(1),
            Asn(2),
            Relationship::CustomerProvider {
                customer: Asn(2),
                provider: Asn(1),
            },
        );
        rels.set(Asn(1), Asn(4), Relationship::PeerPeer);
        rels.set(
            Asn(2),
            Asn(4),
            Relationship::CustomerProvider {
                customer: Asn(4),
                provider: Asn(2),
            },
        );
        let m = relationship_model(&g, &d.prefixes(), &rels);
        let res = m.simulate(Prefix::for_origin(Asn(4))).unwrap();
        let best = res.best_route(RouterId::new(Asn(1), 0)).unwrap();
        assert_eq!(best.as_path.to_string(), "2 4");
    }
}
