//! Prediction and evaluation (paper §4.2/§4.7).
//!
//! "The evaluation proceeds by executing a C-BGP simulation for each prefix
//! and then comparing the predicted AS-path according to the AS-routing
//! model with the actual observed AS-path in the Internet."

use crate::metrics::{
    match_level, mismatch_reason, unique_routes_by_prefix, MatchCounts, MatchLevel, MismatchReason,
    PrefixCoverage,
};
use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Full evaluation of a model against a dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Match tallies over all unique (observer AS, path) routes.
    pub counts: MatchCounts,
    /// Per-prefix RIB-Out coverage thresholds.
    pub coverage: PrefixCoverage,
    /// Mismatch taxonomy: `[not-available, shorter-selected, tie-break,
    /// other-policy]` counts.
    pub reasons: [usize; 4],
}

impl Evaluation {
    fn record_reason(&mut self, r: MismatchReason) {
        let i = match r {
            MismatchReason::NotAvailable => 0,
            MismatchReason::ShorterPathSelected => 1,
            MismatchReason::TieBreakLost => 2,
            MismatchReason::OtherPolicy => 3,
        };
        self.reasons[i] += 1;
    }

    /// Merges a per-prefix evaluation into the total.
    pub fn merge(&mut self, other: &Evaluation) {
        self.counts.merge(&other.counts);
        self.coverage.prefixes += other.coverage.prefixes;
        self.coverage.at_least_50 += other.coverage.at_least_50;
        self.coverage.at_least_90 += other.coverage.at_least_90;
        self.coverage.full += other.coverage.full;
        for i in 0..4 {
            self.reasons[i] += other.reasons[i];
        }
    }
}

/// The model's answer for one (prefix, observation AS) pair, derived from
/// a single per-prefix simulation: the best route at every quasi-router of
/// the observing AS, plus the §4.2 match classification when an observed
/// AS-path is supplied for comparison.
///
/// This is the per-query unit `quasar-serve` caches and serves; the batch
/// [`evaluate`] driver is built from the same per-prefix pieces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutePrediction {
    /// Best AS-path selected by each quasi-router of the observing AS
    /// (ascending router id; `None` = no route to the prefix).
    pub best: Vec<(RouterId, Option<AsPath>)>,
    /// Match level of the observed path, when one was supplied.
    pub match_level: Option<MatchLevel>,
    /// Mismatch taxonomy, when an observed path was supplied and it was
    /// not a RIB-Out match.
    pub mismatch: Option<MismatchReason>,
}

/// Computes the prediction for one (prefix, observation AS) pair from an
/// already-converged simulation of that prefix. `routers` are the quasi-
/// routers of the observing AS (as returned by
/// [`AsRoutingModel::quasi_routers_of`]); `observed` optionally supplies
/// the real-world AS-path to classify against (observer AS at its head, as
/// in a RouteViews feed).
pub fn predict_route(
    result: &SimulationResult,
    routers: &[RouterId],
    observed: Option<&AsPath>,
) -> RoutePrediction {
    let best = routers
        .iter()
        .map(|&r| (r, result.best_route(r).map(|b| b.as_path.clone())))
        .collect();
    let (level, mismatch) = match observed {
        None => (None, None),
        Some(path) => {
            let level = match_level(result, routers, path);
            let reason = if level == MatchLevel::RibOut {
                None
            } else {
                Some(mismatch_reason(result, routers, path))
            };
            (Some(level), reason)
        }
    };
    RoutePrediction {
        best,
        match_level: level,
        mismatch,
    }
}

/// Scores every unique (observer AS, path) route of one prefix against its
/// simulation. `sim` is `None` when the prefix is unknown to the model or
/// its simulation diverged — every route then counts as unpredictable.
///
/// [`evaluate`] folds this per-prefix unit over a whole dataset; a serving
/// layer can call it directly with a cached [`SimulationResult`].
pub fn evaluate_prefix(
    model: &AsRoutingModel,
    sim: Option<&SimulationResult>,
    routes: &[(Asn, AsPath)],
) -> Evaluation {
    let mut ev = Evaluation::default();
    if let Some(res) = sim {
        let mut matched = 0usize;
        for (observer, path) in routes {
            let routers = model.quasi_routers_of(*observer);
            let level = match_level(res, &routers, path);
            ev.counts.record(level);
            if level == MatchLevel::RibOut {
                matched += 1;
            } else {
                ev.record_reason(mismatch_reason(res, &routers, path));
            }
        }
        ev.coverage.record(matched, routes.len());
    } else {
        // Unknown prefix or diverged simulation: unpredictable.
        for _ in routes {
            ev.counts.record(MatchLevel::None);
            ev.record_reason(MismatchReason::NotAvailable);
        }
        ev.coverage.record(0, routes.len());
    }
    ev
}

/// Evaluates `model` against every unique (observer AS, AS-path) route of
/// `dataset`, one simulation per prefix, in parallel. Prefixes whose origin
/// is unknown to the model count as unmatched (`MatchLevel::None`) — the
/// model simply cannot predict them.
// `expect` below: crossbeam scope errors only if a worker panicked, and a
// panic should propagate, not be swallowed.
#[allow(clippy::expect_used)]
pub fn evaluate(model: &AsRoutingModel, dataset: &Dataset) -> Evaluation {
    let by_prefix: Vec<(
        Prefix,
        Vec<(quasar_bgpsim::types::Asn, quasar_bgpsim::aspath::AsPath)>,
    )> = unique_routes_by_prefix(dataset).into_iter().collect();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(by_prefix.len().max(1));
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Evaluation> = vec![Evaluation::default(); by_prefix.len()];
    let slots: Vec<parking_lot::Mutex<&mut Evaluation>> =
        partials.iter_mut().map(parking_lot::Mutex::new).collect();

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                // sast: relaxed-ok work-claim ticket; results are published through the channel/join, only claim uniqueness matters
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= by_prefix.len() {
                    break;
                }
                let (prefix, routes) = &by_prefix[i];
                let sim = if model.prefixes().contains_key(prefix) {
                    model.simulate(*prefix).ok()
                } else {
                    None
                };
                **slots[i].lock() = evaluate_prefix(model, sim.as_ref(), routes);
            });
        }
    })
    .expect("worker threads join");
    drop(slots);

    let mut total = Evaluation::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observed::ObservedRoute;
    use crate::refine::{refine, RefineConfig};
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Asn;

    fn dataset() -> Dataset {
        let routes = vec![
            (&[1u32, 2, 3][..], 3u32, 0u32),
            (&[1, 4, 3], 3, 0),
            (&[5, 4, 3], 3, 1),
            (&[1, 2], 2, 0),
            (&[5, 4, 2, 0x7D0], 0x7D0, 1),
        ];
        Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn refined_model_scores_perfectly_on_training() {
        let d = dataset();
        let graph = d.as_graph();
        let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
        refine(&mut model, &d, &RefineConfig::default()).unwrap();
        let ev = evaluate(&model, &d);
        assert_eq!(ev.counts.rib_out, ev.counts.total);
        assert_eq!(ev.coverage.full, ev.coverage.prefixes);
        assert!((ev.counts.rib_out_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrefined_model_scores_partially() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let ev = evaluate(&model, &d);
        assert_eq!(ev.counts.total, d.len());
        assert!(ev.counts.rib_out < ev.counts.total);
        // Diamond ties show up as potential RIB-Out.
        assert!(ev.counts.potential_rib_out > 0);
    }

    #[test]
    fn unknown_prefix_counts_as_none() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let extra = Dataset::new(vec![ObservedRoute {
            point: 9,
            observer_as: Asn(1),
            prefix: Prefix::for_origin(Asn(777)),
            as_path: AsPath::from_u32s(&[1, 777]),
        }]);
        let ev = evaluate(&model, &extra);
        assert_eq!(ev.counts.none, 1);
        assert_eq!(ev.reasons[0], 1);
    }

    #[test]
    fn predict_route_reports_best_and_match_class() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let prefix = Prefix::for_origin(Asn(3));
        let res = model.simulate(prefix).unwrap();
        let routers = model.quasi_routers_of(Asn(1));

        // No observed path: best routes only, no classification.
        let p = predict_route(&res, &routers, None);
        assert_eq!(p.best.len(), routers.len());
        assert!(p.best.iter().all(|(_, b)| b.is_some()));
        assert_eq!(p.match_level, None);
        assert_eq!(p.mismatch, None);

        // The tie-break winner is a RIB-Out match on the initial model.
        let winner = AsPath::from_u32s(&[1, 2, 3]);
        let p = predict_route(&res, &routers, Some(&winner));
        assert_eq!(p.match_level, Some(MatchLevel::RibOut));
        assert_eq!(p.mismatch, None);

        // The tie-break loser classifies as potential RIB-Out.
        let loser = AsPath::from_u32s(&[1, 4, 3]);
        let p = predict_route(&res, &routers, Some(&loser));
        assert_eq!(p.match_level, Some(MatchLevel::PotentialRibOut));
        assert_eq!(p.mismatch, Some(MismatchReason::TieBreakLost));
    }

    #[test]
    fn evaluate_prefix_matches_batch_evaluate() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let mut total = Evaluation::default();
        for (prefix, routes) in unique_routes_by_prefix(&d) {
            let sim = model.simulate(prefix).ok();
            total.merge(&evaluate_prefix(&model, sim.as_ref(), &routes));
        }
        assert_eq!(total, evaluate(&model, &d));
    }

    #[test]
    fn evaluation_is_deterministic_despite_parallelism() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let a = evaluate(&model, &d);
        let b = evaluate(&model, &d);
        assert_eq!(a, b);
    }
}
