//! Prediction and evaluation (paper §4.2/§4.7).
//!
//! "The evaluation proceeds by executing a C-BGP simulation for each prefix
//! and then comparing the predicted AS-path according to the AS-routing
//! model with the actual observed AS-path in the Internet."

use crate::metrics::{
    match_level, mismatch_reason, unique_routes_by_prefix, MatchCounts, MatchLevel, MismatchReason,
    PrefixCoverage,
};
use crate::model::AsRoutingModel;
use crate::observed::Dataset;
use quasar_bgpsim::types::Prefix;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Full evaluation of a model against a dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Match tallies over all unique (observer AS, path) routes.
    pub counts: MatchCounts,
    /// Per-prefix RIB-Out coverage thresholds.
    pub coverage: PrefixCoverage,
    /// Mismatch taxonomy: `[not-available, shorter-selected, tie-break,
    /// other-policy]` counts.
    pub reasons: [usize; 4],
}

impl Evaluation {
    fn record_reason(&mut self, r: MismatchReason) {
        let i = match r {
            MismatchReason::NotAvailable => 0,
            MismatchReason::ShorterPathSelected => 1,
            MismatchReason::TieBreakLost => 2,
            MismatchReason::OtherPolicy => 3,
        };
        self.reasons[i] += 1;
    }

    /// Merges a per-prefix evaluation into the total.
    pub fn merge(&mut self, other: &Evaluation) {
        self.counts.merge(&other.counts);
        self.coverage.prefixes += other.coverage.prefixes;
        self.coverage.at_least_50 += other.coverage.at_least_50;
        self.coverage.at_least_90 += other.coverage.at_least_90;
        self.coverage.full += other.coverage.full;
        for i in 0..4 {
            self.reasons[i] += other.reasons[i];
        }
    }
}

/// Evaluates `model` against every unique (observer AS, AS-path) route of
/// `dataset`, one simulation per prefix, in parallel. Prefixes whose origin
/// is unknown to the model count as unmatched (`MatchLevel::None`) — the
/// model simply cannot predict them.
pub fn evaluate(model: &AsRoutingModel, dataset: &Dataset) -> Evaluation {
    let by_prefix: Vec<(
        Prefix,
        Vec<(quasar_bgpsim::types::Asn, quasar_bgpsim::aspath::AsPath)>,
    )> = unique_routes_by_prefix(dataset).into_iter().collect();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(by_prefix.len().max(1));
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Evaluation> = vec![Evaluation::default(); by_prefix.len()];
    let slots: Vec<parking_lot::Mutex<&mut Evaluation>> =
        partials.iter_mut().map(parking_lot::Mutex::new).collect();

    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= by_prefix.len() {
                    break;
                }
                let (prefix, routes) = &by_prefix[i];
                let mut ev = Evaluation::default();
                let sim = if model.prefixes().contains_key(prefix) {
                    model.simulate(*prefix).ok()
                } else {
                    None
                };
                if let Some(res) = sim {
                    let mut matched = 0usize;
                    for (observer, path) in routes {
                        let routers = model.quasi_routers_of(*observer);
                        let level = match_level(&res, &routers, path);
                        ev.counts.record(level);
                        if level == MatchLevel::RibOut {
                            matched += 1;
                        } else {
                            ev.record_reason(mismatch_reason(&res, &routers, path));
                        }
                    }
                    ev.coverage.record(matched, routes.len());
                } else {
                    // Unknown prefix or diverged simulation: unpredictable.
                    for _ in routes {
                        ev.counts.record(MatchLevel::None);
                        ev.record_reason(MismatchReason::NotAvailable);
                    }
                    ev.coverage.record(0, routes.len());
                }
                **slots[i].lock() = ev;
            });
        }
    })
    .expect("worker threads join");
    drop(slots);

    let mut total = Evaluation::default();
    for p in &partials {
        total.merge(p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observed::ObservedRoute;
    use crate::refine::{refine, RefineConfig};
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Asn;

    fn dataset() -> Dataset {
        let routes = vec![
            (&[1u32, 2, 3][..], 3u32, 0u32),
            (&[1, 4, 3], 3, 0),
            (&[5, 4, 3], 3, 1),
            (&[1, 2], 2, 0),
            (&[5, 4, 2, 0x7D0], 0x7D0, 1),
        ];
        Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn refined_model_scores_perfectly_on_training() {
        let d = dataset();
        let graph = d.as_graph();
        let mut model = AsRoutingModel::initial(&graph, &d.prefixes());
        refine(&mut model, &d, &RefineConfig::default()).unwrap();
        let ev = evaluate(&model, &d);
        assert_eq!(ev.counts.rib_out, ev.counts.total);
        assert_eq!(ev.coverage.full, ev.coverage.prefixes);
        assert!((ev.counts.rib_out_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrefined_model_scores_partially() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let ev = evaluate(&model, &d);
        assert_eq!(ev.counts.total, d.len());
        assert!(ev.counts.rib_out < ev.counts.total);
        // Diamond ties show up as potential RIB-Out.
        assert!(ev.counts.potential_rib_out > 0);
    }

    #[test]
    fn unknown_prefix_counts_as_none() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let extra = Dataset::new(vec![ObservedRoute {
            point: 9,
            observer_as: Asn(1),
            prefix: Prefix::for_origin(Asn(777)),
            as_path: AsPath::from_u32s(&[1, 777]),
        }]);
        let ev = evaluate(&model, &extra);
        assert_eq!(ev.counts.none, 1);
        assert_eq!(ev.reasons[0], 1);
    }

    #[test]
    fn evaluation_is_deterministic_despite_parallelism() {
        let d = dataset();
        let graph = d.as_graph();
        let model = AsRoutingModel::initial(&graph, &d.prefixes());
        let a = evaluate(&model, &d);
        let b = evaluate(&model, &d);
        assert_eq!(a, b);
    }
}
