//! Incremental model maintenance: retrain only what a window of BGP
//! updates actually touched.
//!
//! The streaming pipeline (`quasar-stream`) applies each update window to
//! the observed-path set and asks for a new model. Retraining from scratch
//! re-refines every prefix; this module reuses the sharded-refinement
//! machinery of [`crate::refine`] to skip the untouched ones while keeping
//! the **incremental-equals-full contract**: the model produced here is
//! byte-identical to a from-scratch [`refine`](crate::refine::refine) on
//! the same final path set.
//!
//! ## Why reuse is sound
//!
//! Refinement is three deterministic phases (see the `refine` module
//! docs): per-domain refinement against copy-on-write views of the base
//! model, an op-log merge in ascending domain order, and a repair pass.
//! Two observations make incremental reuse exact rather than approximate:
//!
//! 1. **A domain delta is a pure function of its inputs.** A domain's
//!    op-log depends only on the base model (itself a pure function of the
//!    AS graph and the prefix→origin map) and the domain's own
//!    `(prefix, targets)` slice. If the graph and origins are unchanged
//!    and a domain's fingerprint over its prefixes' target sets matches
//!    the cached one, a full retrain would recompute the *identical*
//!    delta — so replaying the cached op-log at merge is byte-exact, not
//!    an approximation.
//! 2. **The repair phase is a deterministic schedule given fixed
//!    structure.** Repair simulates every active prefix against the
//!    round-start model and applies fixes in ascending prefix order. A
//!    prefix's simulation reads the router/session structure (created
//!    only by `Duplicate` ops) and policies scoped to that prefix. The
//!    structure the merge builds is pinned by its *duplication schedule*
//!    (see `merge_duplication_schedule` in the refine module): domains
//!    overlap heavily in which routers they duplicate and the merge
//!    collapses the copies, so a dirty domain may reshuffle its own
//!    `Duplicate` ops freely — as long as the deduplicated schedule is
//!    unchanged, the merged model's shared structure equals the previous
//!    epoch's, and an untouched prefix's round-by-round simulations — and
//!    therefore its fixes — are exactly the previous epoch's. The trainer
//!    records the repair phase as a trace of per-round fix-sets and
//!    *replays* the untouched prefixes' steps without simulating them,
//!    re-simulating only the dirty prefixes alongside. Dirty prefixes'
//!    policy fixes are scoped to their own prefixes and cannot perturb a
//!    replayed step; only a drift in a dirty prefix's repair-time
//!    *duplications* changes shared structure, and that one event aborts
//!    the replay back to the classic full repair.
//!
//! The fallback ladder degrades conservatively: a changed AS graph,
//! origin map, or domain partition forces a full retrain; a changed
//! merge-time duplication schedule — or a structural drift detected
//! mid-replay — disables the trace replay, so every prefix is re-verified
//! by the classic loop, but cached deltas of fingerprint-matching domains
//! are still reused. The differential suite in `quasar-testkit` enforces
//! the contract across seeds and thread counts.

use crate::observed::Dataset;
use crate::persist::{self, PersistError};
use crate::refine::{
    build_jobs, domain_ranges, merge_domains, merge_duplication_schedule, prepare_repair,
    run_domains, run_repair_traced, DomainDelta, PrefixJob, RankingAttr, RefineConfig, RefineError,
    RefineReport, RepairTrace,
};
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_topology::graph::AsGraph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::ops::Range;
use std::path::Path;

use crate::model::AsRoutingModel;

/// How a [`IncrementalTrainer::train`] call obtained its model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainMode {
    /// No cache yet — the first full training run.
    Initial,
    /// The cache exists but cannot be reused; the reason says why
    /// (changed graph, origins, partition, or configuration).
    FullRetrain {
        /// Human-readable cause of the cache invalidation.
        reason: String,
    },
    /// Cached domain deltas were reused for unchanged domains.
    Incremental {
        /// Untouched prefixes' repair steps were replayed from the
        /// recorded trace without re-simulation. False when a re-refined
        /// domain's duplication subsequence changed (structure shifted,
        /// so the trace doesn't carry) or a mid-replay drift aborted the
        /// replay back to the classic full repair.
        repair_replayed: bool,
    },
}

impl fmt::Display for TrainMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainMode::Initial => write!(f, "initial"),
            TrainMode::FullRetrain { reason } => write!(f, "full-retrain ({reason})"),
            TrainMode::Incremental { repair_replayed } => {
                write!(
                    f,
                    "incremental ({})",
                    if *repair_replayed {
                        "repair trace replayed"
                    } else {
                        "all prefixes re-verified"
                    }
                )
            }
        }
    }
}

/// What one [`IncrementalTrainer::train`] call did and reused.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalReport {
    /// Reuse mode of this run.
    pub mode: TrainMode,
    /// The underlying refinement report (repair-phase view; skipped
    /// prefixes keep their cached domain-phase outcomes).
    pub refine: RefineReport,
    /// Total refinement domains in the partition.
    pub domains_total: usize,
    /// Domains whose cached delta was replayed instead of re-refined.
    pub domains_reused: usize,
    /// Prefixes whose repair steps were replayed from the recorded trace
    /// instead of being re-simulated (0 unless the replay carried
    /// through).
    pub prefixes_skipped: usize,
    /// Prefixes living in re-refined (dirty) domains.
    pub dirty_prefixes: usize,
}

/// The persisted reuse state: everything needed to decide, on the next
/// dataset revision, which work is provably identical to last time.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrainerCache {
    /// Monotonic training-epoch counter (also the checkpoint sequence).
    epoch: u64,
    /// Guard: the cache is only valid for the configuration it was
    /// trained under (`threads` excepted — results are thread-invariant).
    max_iterations: usize,
    /// Guard: see `max_iterations`.
    allow_duplication: bool,
    /// Guard: see `max_iterations`.
    ranking: RankingAttr,
    /// Sorted node ids of the AS graph the base model was built from.
    graph_nodes: Vec<u32>,
    /// Sorted undirected edge list of that graph.
    graph_edges: Vec<(u32, u32)>,
    /// The prefix→origin map, in ascending prefix order.
    origins: Vec<(Prefix, u32)>,
    /// Number of refinement jobs (pins the domain partition, which is a
    /// pure function of this count).
    num_jobs: usize,
    /// Per-domain FNV-1a fingerprint over each `(prefix, targets)` slice.
    domain_fps: Vec<u64>,
    /// Every domain's delta from the last run, indexed by domain id.
    deltas: Vec<DomainDelta>,
    /// The last run's repair phase as per-round fix-sets, replayable when
    /// the merged structure is provably unchanged.
    repair: RepairTrace,
}

/// A trainer that remembers enough about its last run to retrain only the
/// prefixes a dataset revision actually changed — while producing models
/// byte-identical to a from-scratch [`refine`](crate::refine::refine).
///
/// The state survives process restarts through the same `QUASAR1`
/// checkpoint frames as [`refine_checkpointed`](crate::refine::refine_checkpointed):
/// [`IncrementalTrainer::save`] / [`IncrementalTrainer::load`].
#[derive(Debug, Default)]
pub struct IncrementalTrainer {
    cache: Option<TrainerCache>,
}

impl IncrementalTrainer {
    /// A trainer with no history; the first [`train`](Self::train) is a
    /// full run.
    pub fn new() -> Self {
        IncrementalTrainer { cache: None }
    }

    /// True once a successful [`train`](Self::train) (or a
    /// [`load`](Self::load)) installed reuse state.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Training epochs completed so far (0 for a fresh trainer).
    pub fn epoch(&self) -> u64 {
        self.cache.as_ref().map(|c| c.epoch).unwrap_or(0)
    }

    /// Persists the reuse state into `dir` as a checkpoint frame (kept
    /// alongside the previous one, like refinement checkpoints). A
    /// trainer with no cache writes nothing.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), RefineError> {
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        let json = serde_json::to_string(cache).map_err(|e| {
            RefineError::CheckpointMismatch(format!("trainer cache serialization: {e}"))
        })?;
        persist::save_checkpoint_payload(dir.as_ref(), cache.epoch, json.as_bytes(), 2)?;
        Ok(())
    }

    /// Restores a trainer from the newest loadable checkpoint frame in
    /// `dir`, refusing caches trained under a different configuration
    /// (`threads` excepted — the model is thread-invariant).
    pub fn load(dir: impl AsRef<Path>, cfg: &RefineConfig) -> Result<Self, RefineError> {
        let (seq, payload) = persist::load_latest_checkpoint_payload(dir.as_ref())?;
        let text = std::str::from_utf8(&payload).map_err(|_| {
            RefineError::CheckpointMismatch("trainer cache payload is not UTF-8".into())
        })?;
        let cache: TrainerCache = serde_json::from_str(text).map_err(|e| {
            RefineError::CheckpointMismatch(format!("trainer cache does not parse: {e}"))
        })?;
        if cache.epoch != seq {
            return Err(RefineError::CheckpointMismatch(format!(
                "trainer cache file is named for epoch {seq} but contains epoch {}",
                cache.epoch
            )));
        }
        if let Some(reason) = cfg_mismatch(&cache, cfg) {
            return Err(RefineError::CheckpointMismatch(reason));
        }
        Ok(IncrementalTrainer { cache: Some(cache) })
    }

    /// Trains a model on `training`, reusing as much of the previous run
    /// as is provably identical. Returns the refined model (the same
    /// model [`refine`](crate::refine::refine) would produce on this
    /// dataset, byte for byte) and a report of what was reused.
    pub fn train(
        &mut self,
        training: &Dataset,
        cfg: &RefineConfig,
    ) -> Result<(AsRoutingModel, IncrementalReport), RefineError> {
        let graph = training.as_graph();
        let origins = training.prefixes();
        let mut model = AsRoutingModel::initial(&graph, &origins);
        let mut jobs = build_jobs(&model, training);
        let ranges = domain_ranges(jobs.len());
        let fps = domain_fingerprints(&jobs, &ranges);
        let sig = GraphSig::of(&graph, &origins);

        let mode_plan = self.plan(cfg, &sig, jobs.len(), &ranges);
        let mut done: BTreeMap<usize, DomainDelta> = BTreeMap::new();
        let mut reused: Vec<usize> = Vec::new();
        if matches!(mode_plan, Plan::Incremental) {
            // `plan` only returns Incremental with a cache present.
            if let Some(cache) = &self.cache {
                for (id, fp) in fps.iter().enumerate() {
                    if cache.domain_fps.get(id) == Some(fp) {
                        if let Some(delta) = cache.deltas.get(id) {
                            done.insert(id, delta.clone());
                            reused.push(id);
                        }
                    }
                }
            }
        }
        let dirty_prefixes: usize = ranges
            .iter()
            .enumerate()
            .filter(|(id, _)| !done.contains_key(id))
            .map(|(_, r)| r.len())
            .sum();

        run_domains(&model, cfg, &mut jobs, &ranges, &mut done, 0, None)?;

        // Structure shifted iff the merge would now *allocate* a
        // different duplicate set than the cached run's. Dirty domains
        // routinely reshuffle their own `Duplicate` ops — popular transit
        // routers are duplicated by many domains and the merge collapses
        // the copies onto shared ids — so per-domain op drift (and with
        // it the creation *order*) is common while the allocated
        // `(source, copy)` set, and with it the merged shared structure,
        // stays byte-identical: sessions converge to the same bipartite
        // graph whatever the creation order, and each copy's policy state
        // is its claimants' own re-applied projections (see
        // `merge_domains`), not a clone of creation-time state.
        let structural = match &self.cache {
            Some(cache) if matches!(mode_plan, Plan::Incremental) => {
                let mut old = merge_duplication_schedule(cache.deltas.iter());
                let mut new = merge_duplication_schedule(done.values());
                old.sort_unstable();
                new.sort_unstable();
                cache.deltas.len() != ranges.len() || old != new
            }
            _ => false,
        };

        merge_domains(&mut model, cfg, &ranges, &done, &mut jobs);
        prepare_repair(&mut jobs, cfg);

        // When the merged structure provably equals the recorded epoch's,
        // replay the recorded repair trace: untouched prefixes re-apply
        // their recorded fixes without a single simulation, and only the
        // prefixes of re-refined (dirty) domains are simulated live. A
        // structural drift mid-replay aborts back to the classic loop
        // inside `run_repair_traced`.
        let live: Vec<bool> = {
            let mut v = vec![false; jobs.len()];
            for (id, range) in ranges.iter().enumerate() {
                if reused.binary_search(&id).is_err() {
                    for slot in &mut v[range.clone()] {
                        *slot = true;
                    }
                }
            }
            v
        };
        let hybrid = match (&self.cache, &mode_plan) {
            (Some(cache), Plan::Incremental) if !structural => {
                Some((live.as_slice(), &cache.repair))
            }
            _ => None,
        };
        let (report, repair_trace, replayed) =
            run_repair_traced(&mut model, cfg, &mut jobs, ranges.len(), hybrid)?;
        let skipped = if replayed {
            live.iter().filter(|&&l| !l).count()
        } else {
            0
        };
        crate::audit::log_audit("post-incremental", &model);

        self.cache = Some(TrainerCache {
            epoch: self.epoch() + 1,
            max_iterations: cfg.max_iterations,
            allow_duplication: cfg.allow_duplication,
            ranking: cfg.ranking,
            graph_nodes: sig.nodes,
            graph_edges: sig.edges,
            origins: sig.origins,
            num_jobs: jobs.len(),
            domain_fps: fps,
            deltas: done.into_values().collect(),
            repair: repair_trace,
        });

        let mode = match mode_plan {
            Plan::Initial => TrainMode::Initial,
            Plan::FullRetrain(reason) => TrainMode::FullRetrain { reason },
            Plan::Incremental => TrainMode::Incremental {
                repair_replayed: replayed,
            },
        };
        let domains_reused = reused.len();
        Ok((
            model,
            IncrementalReport {
                mode,
                refine: report,
                domains_total: ranges.len(),
                domains_reused,
                prefixes_skipped: skipped,
                dirty_prefixes,
            },
        ))
    }

    /// Decides the reuse mode for this revision against the cache.
    fn plan(
        &self,
        cfg: &RefineConfig,
        sig: &GraphSig,
        num_jobs: usize,
        ranges: &[Range<usize>],
    ) -> Plan {
        let Some(cache) = &self.cache else {
            return Plan::Initial;
        };
        if let Some(reason) = cfg_mismatch(cache, cfg) {
            return Plan::FullRetrain(reason);
        }
        if cache.graph_nodes != sig.nodes || cache.graph_edges != sig.edges {
            return Plan::FullRetrain("AS graph changed".into());
        }
        if cache.origins != sig.origins {
            return Plan::FullRetrain("prefix origins changed".into());
        }
        if cache.num_jobs != num_jobs || cache.domain_fps.len() != ranges.len() {
            return Plan::FullRetrain("domain partition changed".into());
        }
        Plan::Incremental
    }
}

/// The reuse decision, before domain reuse and repair-trace replay.
enum Plan {
    Initial,
    FullRetrain(String),
    Incremental,
}

/// Canonical signature of the base-model inputs.
struct GraphSig {
    nodes: Vec<u32>,
    edges: Vec<(u32, u32)>,
    origins: Vec<(Prefix, u32)>,
}

impl GraphSig {
    fn of(graph: &AsGraph, origins: &BTreeMap<Prefix, Asn>) -> GraphSig {
        let mut nodes: Vec<u32> = graph.nodes().map(|a| a.0).collect();
        nodes.sort_unstable();
        let mut edges: Vec<(u32, u32)> = graph.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        GraphSig {
            nodes,
            edges,
            origins: origins.iter().map(|(&p, &a)| (p, a.0)).collect(),
        }
    }
}

/// Returns why `cfg` invalidates `cache`, if it does (`threads` is
/// deliberately not compared — results are thread-invariant).
fn cfg_mismatch(cache: &TrainerCache, cfg: &RefineConfig) -> Option<String> {
    if cache.max_iterations != cfg.max_iterations {
        Some(format!(
            "max_iterations changed ({} -> {})",
            cache.max_iterations, cfg.max_iterations
        ))
    } else if cache.allow_duplication != cfg.allow_duplication {
        Some("allow_duplication changed".into())
    } else if cache.ranking != cfg.ranking {
        Some("ranking attribute changed".into())
    } else {
        None
    }
}

/// FNV-1a fingerprint per domain over each member prefix and its full
/// target set — the exact inputs [`refine`](crate::refine::refine) hands
/// that domain, so fingerprint equality means the domain's delta is a
/// replay of the cached one.
fn domain_fingerprints(jobs: &[(Prefix, PrefixJob)], ranges: &[Range<usize>]) -> Vec<u64> {
    ranges
        .iter()
        .map(|r| {
            let mut text = String::new();
            for (prefix, job) in &jobs[r.clone()] {
                let _ = writeln!(text, "{prefix}");
                for t in &job.targets {
                    let _ = writeln!(text, "{} {} {}", t.len, t.o, t.asn.0);
                }
            }
            persist::fnv1a(text.as_bytes())
        })
        .collect()
}

/// Convenience for callers that tolerate a missing cache: load it if
/// possible, otherwise start fresh. Only plain I/O failures (no cache
/// written yet, unreadable directory) degrade to a full first run; a
/// cache that is present but corrupt or trained under different knobs is
/// surfaced, because silently retraining over it would break epoch
/// comparability.
pub fn load_or_new(
    dir: impl AsRef<Path>,
    cfg: &RefineConfig,
) -> Result<IncrementalTrainer, RefineError> {
    match IncrementalTrainer::load(&dir, cfg) {
        Ok(t) => Ok(t),
        Err(RefineError::Persist(PersistError::Io { .. } | PersistError::NoCheckpoint { .. })) => {
            Ok(IncrementalTrainer::new())
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observed::ObservedRoute;
    use crate::refine::refine;
    use quasar_bgpsim::aspath::AsPath;

    /// A small synthetic dataset: a chain-and-spokes topology with enough
    /// prefixes to span multiple refinement domains.
    fn dataset(paths: &[(u32, &[u32])]) -> Dataset {
        Dataset::new(
            paths
                .iter()
                .enumerate()
                .map(|(i, (origin, path))| ObservedRoute {
                    point: (i % 3) as u32,
                    observer_as: Asn(path[0]),
                    prefix: Prefix::for_origin(Asn(*origin)),
                    as_path: AsPath::from_u32s(path),
                }),
        )
    }

    fn base_paths() -> Vec<(u32, Vec<u32>)> {
        // Enough origins for several refinement domains (the partitioner
        // targets 16 prefixes per domain), two observers each, sharing a
        // transit core so route changes stay graph-preserving.
        let mut v = Vec::new();
        for origin in 30u32..78 {
            v.push((origin, vec![1, 10, origin]));
            v.push((origin, vec![2, 10, origin]));
            v.push((origin, vec![1, 11, 10, origin]));
        }
        v
    }

    fn to_dataset(paths: &[(u32, Vec<u32>)]) -> Dataset {
        let borrowed: Vec<(u32, &[u32])> = paths.iter().map(|(o, p)| (*o, p.as_slice())).collect();
        dataset(&borrowed)
    }

    fn full_json(training: &Dataset, cfg: &RefineConfig) -> String {
        let mut model = AsRoutingModel::initial(&training.as_graph(), &training.prefixes());
        refine(&mut model, training, cfg).expect("full refine");
        model.to_json().expect("model serializes")
    }

    #[test]
    fn initial_train_matches_full_refine() {
        let training = to_dataset(&base_paths());
        let cfg = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut trainer = IncrementalTrainer::new();
        let (model, report) = trainer.train(&training, &cfg).expect("train");
        assert_eq!(report.mode, TrainMode::Initial);
        assert_eq!(model.to_json().expect("json"), full_json(&training, &cfg));
        assert!(trainer.has_cache());
        assert_eq!(trainer.epoch(), 1);
    }

    #[test]
    fn unchanged_dataset_skips_everything_and_stays_identical() {
        let training = to_dataset(&base_paths());
        let cfg = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut trainer = IncrementalTrainer::new();
        let (m1, _) = trainer.train(&training, &cfg).expect("first");
        let (m2, report) = trainer.train(&training, &cfg).expect("second");
        assert_eq!(
            report.mode,
            TrainMode::Incremental {
                repair_replayed: true
            },
            "an unchanged dataset must replay the whole repair trace"
        );
        assert_eq!(report.domains_reused, report.domains_total);
        assert_eq!(report.dirty_prefixes, 0);
        assert_eq!(
            report.prefixes_skipped,
            report.refine.prefixes.len(),
            "every prefix must be replayed without re-simulation"
        );
        assert_eq!(
            m1.to_json().expect("json"),
            m2.to_json().expect("json"),
            "identical dataset must reproduce the identical model"
        );
    }

    #[test]
    fn single_path_change_matches_full_retrain() {
        let cfg = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut paths = base_paths();
        let mut trainer = IncrementalTrainer::new();
        trainer.train(&to_dataset(&paths), &cfg).expect("first");

        // Re-route one observation over the alternative transit (both
        // edges already exist, so the AS graph is unchanged).
        paths[0].1 = vec![1, 11, 10, paths[0].0];
        let training = to_dataset(&paths);
        let (model, report) = trainer.train(&training, &cfg).expect("second");
        assert!(
            matches!(report.mode, TrainMode::Incremental { .. }),
            "graph-preserving path change must stay incremental, got {}",
            report.mode
        );
        assert!(
            report.domains_reused > 0,
            "untouched domains must be reused"
        );
        assert_eq!(
            model.to_json().expect("json"),
            full_json(&training, &cfg),
            "incremental model must be byte-identical to a full retrain"
        );
    }

    #[test]
    fn origin_change_falls_back_to_full_retrain() {
        let cfg = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut paths = base_paths();
        let mut trainer = IncrementalTrainer::new();
        trainer.train(&to_dataset(&paths), &cfg).expect("first");

        // A brand-new origin AS changes the graph and the origin map.
        paths.push((99, vec![1, 10, 99]));
        paths.push((99, vec![2, 10, 99]));
        let training = to_dataset(&paths);
        let (model, report) = trainer.train(&training, &cfg).expect("second");
        assert!(
            matches!(report.mode, TrainMode::FullRetrain { .. }),
            "a new origin must force a full retrain, got {}",
            report.mode
        );
        assert_eq!(model.to_json().expect("json"), full_json(&training, &cfg));
    }

    #[test]
    fn incremental_is_thread_invariant() {
        let cfg1 = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let cfg4 = RefineConfig {
            threads: 4,
            ..RefineConfig::default()
        };
        let mut paths = base_paths();
        let mut t1 = IncrementalTrainer::new();
        let mut t4 = IncrementalTrainer::new();
        t1.train(&to_dataset(&paths), &cfg1).expect("seed 1t");
        t4.train(&to_dataset(&paths), &cfg4).expect("seed 4t");
        paths[2].1 = vec![1, 11, 10, paths[2].0];
        let training = to_dataset(&paths);
        let (m1, _) = t1.train(&training, &cfg1).expect("inc 1t");
        let (m4, _) = t4.train(&training, &cfg4).expect("inc 4t");
        assert_eq!(m1.to_json().expect("json"), m4.to_json().expect("json"));
    }

    #[test]
    fn cache_round_trips_through_checkpoint_frames() {
        let dir =
            std::env::temp_dir().join(format!("quasar-inc-{}-{}", std::process::id(), line!()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut paths = base_paths();
        let mut trainer = IncrementalTrainer::new();
        trainer.train(&to_dataset(&paths), &cfg).expect("first");
        trainer.save(&dir).expect("save");

        let mut restored = IncrementalTrainer::load(&dir, &cfg).expect("load");
        assert_eq!(restored.epoch(), 1);
        paths[0].1 = vec![1, 11, 10, paths[0].0];
        let training = to_dataset(&paths);
        let (model, report) = restored.train(&training, &cfg).expect("train");
        assert!(matches!(report.mode, TrainMode::Incremental { .. }));
        assert_eq!(model.to_json().expect("json"), full_json(&training, &cfg));

        // A different configuration must refuse the cache.
        let other = RefineConfig {
            allow_duplication: false,
            threads: 1,
            ..RefineConfig::default()
        };
        assert!(matches!(
            IncrementalTrainer::load(&dir, &other),
            Err(RefineError::CheckpointMismatch(_))
        ));
        // load_or_new degrades a *missing* cache to a fresh trainer but
        // still surfaces the config mismatch.
        assert!(load_or_new(dir.join("nope"), &cfg)
            .map(|t| !t.has_cache())
            .unwrap_or(false));
        assert!(load_or_new(&dir, &other).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
