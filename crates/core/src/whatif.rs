//! Structured what-if analysis (paper §1).
//!
//! "We seek to be able to answer specific what-if questions, e.g., what if
//! a certain peering link was removed, or what-if we change policies
//! thus?" — this module turns a refined [`AsRoutingModel`] into a scenario
//! engine: apply a list of [`Change`]s to a copy of the model, re-simulate,
//! and report per-(router, prefix) routing differences.

use crate::model::AsRoutingModel;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::error::SimError;
use quasar_bgpsim::policy::{Action, PolicyRule, RouteMatch};
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One hypothetical change to the Internet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Change {
    /// Remove the adjacency between two ASes (de-peering).
    Depeer(Asn, Asn),
    /// Add a new adjacency between two ASes.
    AddPeering(Asn, Asn),
    /// AS `asn` stops announcing `prefix` towards AS `neighbor`
    /// (selective filtering).
    FilterPrefix {
        /// The filtering AS.
        asn: Asn,
        /// The neighbor the announcement is withheld from.
        neighbor: Asn,
        /// The filtered prefix.
        prefix: Prefix,
    },
}

/// How one (router, prefix) pair is affected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impact {
    /// Path changed from the first to the second.
    Rerouted(AsPath, AsPath),
    /// Reachability lost (previous path recorded).
    Lost(AsPath),
    /// Reachability gained (new path recorded).
    Gained(AsPath),
}

/// The routing difference between the base model and the scenario.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoutingDiff {
    /// (router, prefix) pairs whose best route changed, with the change.
    pub impacts: Vec<(RouterId, Prefix, Impact)>,
    /// Pairs evaluated in total.
    pub pairs: usize,
    /// Prefixes whose simulation diverged in the scenario (policy
    /// oscillation introduced by the change).
    pub diverged_prefixes: usize,
}

impl RoutingDiff {
    /// Folds one prefix's base/scenario simulation pair into the diff —
    /// the per-prefix unit behind [`Scenario::diff`], exposed so a serving
    /// layer can drive it from cached simulations. `after` is `None` when
    /// the scenario simulation diverged (counted, routers skipped). Pairs
    /// are recorded in `before`'s deterministic RIB order, so folding
    /// prefixes in ascending order reproduces [`Scenario::diff_for`]
    /// exactly.
    pub fn record_prefix(
        &mut self,
        prefix: Prefix,
        before: &SimulationResult,
        after: Option<&SimulationResult>,
    ) {
        let Some(after) = after else {
            self.diverged_prefixes += 1;
            return;
        };
        for rib in before.ribs() {
            self.pairs += 1;
            let old = rib.best().map(|r| r.as_path.clone());
            let new = after
                .rib(rib.router)
                .and_then(|r| r.best())
                .map(|r| r.as_path.clone());
            let impact = match (old, new) {
                (Some(a), Some(b)) if a == b => None,
                (Some(a), Some(b)) => Some(Impact::Rerouted(a, b)),
                (Some(a), None) => Some(Impact::Lost(a)),
                (None, Some(b)) => Some(Impact::Gained(b)),
                (None, None) => None,
            };
            if let Some(i) = impact {
                self.impacts.push((rib.router, prefix, i));
            }
        }
    }

    /// Pairs that kept their route.
    pub fn unchanged(&self) -> usize {
        self.pairs - self.impacts.len()
    }

    /// Count of re-routed pairs.
    pub fn rerouted(&self) -> usize {
        self.impacts
            .iter()
            .filter(|(_, _, i)| matches!(i, Impact::Rerouted(..)))
            .count()
    }

    /// Count of pairs that lost reachability.
    pub fn lost(&self) -> usize {
        self.impacts
            .iter()
            .filter(|(_, _, i)| matches!(i, Impact::Lost(_)))
            .count()
    }

    /// Count of pairs that gained reachability.
    pub fn gained(&self) -> usize {
        self.impacts
            .iter()
            .filter(|(_, _, i)| matches!(i, Impact::Gained(_)))
            .count()
    }

    /// The ASes whose routers are most affected, descending.
    pub fn most_affected_ases(&self) -> Vec<(Asn, usize)> {
        let mut counts: BTreeMap<Asn, usize> = BTreeMap::new();
        for (r, _, _) in &self.impacts {
            *counts.entry(r.asn()).or_default() += 1;
        }
        let mut v: Vec<(Asn, usize)> = counts.into_iter().collect();
        v.sort_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
        v
    }
}

/// Applies one hypothetical [`Change`] directly to a model — the editing
/// primitive behind [`Scenario::apply`], exposed so a serving layer can
/// build a scenario model without cloning the base twice.
pub fn apply_change(model: &mut AsRoutingModel, change: &Change) {
    match *change {
        Change::Depeer(a, b) => {
            model.depeer(a, b);
        }
        Change::AddPeering(a, b) => {
            model.add_peering(a, b);
        }
        Change::FilterPrefix {
            asn,
            neighbor,
            prefix,
        } => {
            for q in model.quasi_routers_of(asn) {
                for peer in model.network().peers_of(q) {
                    if peer.asn() != neighbor {
                        continue;
                    }
                    if let Ok(policy) = model.network_mut().export_policy_mut(q, peer) {
                        policy
                            .push_front(PolicyRule::new(RouteMatch::prefix(prefix), Action::Deny));
                    }
                }
            }
        }
    }
}

/// A what-if scenario over a base model.
#[derive(Debug, Clone)]
pub struct Scenario {
    base: AsRoutingModel,
    edited: AsRoutingModel,
    changes: Vec<Change>,
}

impl Scenario {
    /// Starts a scenario from a (typically refined) model.
    pub fn new(base: &AsRoutingModel) -> Self {
        Scenario {
            base: base.clone(),
            edited: base.clone(),
            changes: Vec::new(),
        }
    }

    /// Applies a change to the scenario copy. Returns `self` for chaining.
    pub fn apply(mut self, change: Change) -> Self {
        apply_change(&mut self.edited, &change);
        self.changes.push(change);
        self
    }

    /// The changes applied so far.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// The edited model (e.g. to persist the scenario).
    pub fn edited_model(&self) -> &AsRoutingModel {
        &self.edited
    }

    /// Simulates base and scenario for every model prefix and reports the
    /// difference at every router.
    pub fn diff(&self) -> Result<RoutingDiff, SimError> {
        self.diff_for(self.base.prefixes().keys().copied())
    }

    /// Like [`Scenario::diff`] but restricted to chosen prefixes.
    pub fn diff_for(
        &self,
        prefixes: impl IntoIterator<Item = Prefix>,
    ) -> Result<RoutingDiff, SimError> {
        let mut out = RoutingDiff::default();
        for prefix in prefixes {
            let before = self.base.simulate(prefix)?;
            let after = match self.edited.simulate(prefix) {
                Ok(r) => Some(r),
                Err(SimError::Divergence { .. }) => None,
                Err(e) => return Err(e),
            };
            out.record_prefix(prefix, &before, after.as_ref());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_topology::graph::AsGraph;

    /// Diamond 1-2-3 / 1-4-3, prefix at 3.
    fn model() -> AsRoutingModel {
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 4, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        AsRoutingModel::initial(&graph, &origins)
    }

    #[test]
    fn depeer_reroutes_via_alternative() {
        let m = model();
        let diff = Scenario::new(&m)
            .apply(Change::Depeer(Asn(2), Asn(3)))
            .diff()
            .unwrap();
        // AS1 re-routes 2 3 -> 4 3; AS2 re-routes 3 -> 1 4 3.
        assert_eq!(diff.lost(), 0);
        assert!(diff.rerouted() >= 2, "{diff:?}");
        let affected = diff.most_affected_ases();
        assert!(!affected.is_empty());
    }

    #[test]
    fn depeer_everything_loses_reachability() {
        let m = model();
        let diff = Scenario::new(&m)
            .apply(Change::Depeer(Asn(2), Asn(3)))
            .apply(Change::Depeer(Asn(4), Asn(3)))
            .diff()
            .unwrap();
        // The origin keeps its local route; everyone else loses it.
        assert_eq!(diff.lost(), 3, "{diff:?}");
    }

    #[test]
    fn add_peering_creates_shortcut() {
        // Line 1-2-3 with prefix at 3; adding 1-3 gives AS1 a direct path.
        let paths = vec![AsPath::from_u32s(&[1, 2, 3])];
        let graph = AsGraph::from_paths(&paths);
        let mut origins = BTreeMap::new();
        origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
        let m = AsRoutingModel::initial(&graph, &origins);
        let diff = Scenario::new(&m)
            .apply(Change::AddPeering(Asn(1), Asn(3)))
            .diff()
            .unwrap();
        assert!(diff.impacts.iter().any(|(r, _, i)| r.asn() == Asn(1)
            && matches!(i, Impact::Rerouted(_, b) if b.to_string() == "3")));
    }

    #[test]
    fn filter_prefix_is_selective() {
        let m = model();
        let p = Prefix::for_origin(Asn(3));
        let diff = Scenario::new(&m)
            .apply(Change::FilterPrefix {
                asn: Asn(3),
                neighbor: Asn(2),
                prefix: p,
            })
            .diff()
            .unwrap();
        // AS2 loses the direct route but regains via AS1: rerouted, and
        // AS1 flips to AS4. Nothing is lost outright.
        assert_eq!(diff.lost(), 0, "{diff:?}");
        assert!(diff.rerouted() >= 1);
    }

    #[test]
    fn empty_scenario_is_identity() {
        let m = model();
        let diff = Scenario::new(&m).diff().unwrap();
        assert!(diff.impacts.is_empty());
        assert_eq!(diff.unchanged(), diff.pairs);
    }
}
