//! Dataset preprocessing (paper §3.1/§4.1): single-homed stub removal with
//! path transfer.
//!
//! "For similar reasons we again exclude stub-ASes but keep their AS-path
//! to ensure that we do not loose any path information." ASes that host
//! observation points are protected from removal — dropping them would
//! discard whole feeds.

use crate::observed::{Dataset, ObservedRoute};
use quasar_bgpsim::types::Asn;
use quasar_topology::classify::classify;
use quasar_topology::graph::AsGraph;
use quasar_topology::prune::{prune_single_homed_stubs, PruneResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of pruning a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrunedDataset {
    /// The rewritten dataset (stub origins collapsed onto their
    /// providers).
    pub dataset: Dataset,
    /// The pruned AS graph.
    pub graph: AsGraph,
    /// Removed single-homed stub ASes.
    pub removed: BTreeSet<Asn>,
    /// Routes dropped entirely (loops or orphaned stubs).
    pub routes_dropped: usize,
}

/// Removes single-homed stub ASes from the dataset, transferring their
/// path information to their provider's prefix. `seeds` are tier-1 hints
/// for the classification (may be empty).
pub fn prune_stub_ases(dataset: &Dataset, seeds: &[Asn]) -> PrunedDataset {
    let graph = dataset.as_graph();
    let paths = dataset.paths();
    let mut class = classify(&graph, &paths, seeds);

    // Never remove an AS that hosts an observation point.
    let observers: BTreeSet<Asn> = dataset.routes().iter().map(|r| r.observer_as).collect();
    class.single_homed_stubs = class
        .single_homed_stubs
        .difference(&observers)
        .copied()
        .collect();

    let pruned: PruneResult = prune_single_homed_stubs(&graph, &class);

    let mut rewritten = Vec::new();
    let mut dropped = 0usize;
    for r in dataset.routes() {
        match pruned.rewrite_path(&r.as_path) {
            Some(path) if !path.is_empty() => rewritten.push(ObservedRoute {
                point: r.point,
                observer_as: r.observer_as,
                prefix: r.prefix,
                as_path: path,
            }),
            _ => dropped += 1,
        }
    }

    PrunedDataset {
        dataset: Dataset::new(rewritten),
        graph: pruned.graph,
        removed: pruned.removed,
        routes_dropped: dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_bgpsim::aspath::AsPath;
    use quasar_bgpsim::types::Prefix;

    fn dataset() -> Dataset {
        // AS6 is a single-homed stub of AS3; AS5 is multihomed.
        let routes = vec![
            (&[1u32, 2][..], 2u32, 0u32),
            (&[2, 1], 1, 1),
            (&[1, 3, 6], 6, 0),
            (&[2, 1, 3, 6], 6, 1),
            (&[1, 5], 5, 0),
            (&[2, 5], 5, 1),
            (&[1, 2, 5], 5, 0),
        ];
        Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }))
    }

    #[test]
    fn stub_collapsed_onto_provider() {
        let d = dataset();
        let pr = prune_stub_ases(&d, &[Asn(1), Asn(2)]);
        assert!(pr.removed.contains(&Asn(6)));
        assert!(!pr.graph.contains(Asn(6)));
        // The 1-3-6 path became 1-3, now "originating" at AS3.
        let p6 = Prefix::for_origin(Asn(6));
        let paths: Vec<String> = pr
            .dataset
            .routes_for(p6)
            .map(|r| r.as_path.to_string())
            .collect();
        assert!(paths.contains(&"1 3".to_string()), "{paths:?}");
        assert_eq!(pr.dataset.prefixes()[&p6], Asn(3));
    }

    #[test]
    fn observers_protected() {
        // AS1/AS2 observe; even if one were a single-homed stub it must
        // survive. Construct: observer AS9 single-homed to AS1.
        let routes = vec![(&[9u32, 1, 2][..], 2u32, 0u32), (&[1, 2], 2, 1)];
        let d = Dataset::new(routes.into_iter().map(|(p, origin, point)| ObservedRoute {
            point,
            observer_as: Asn(p[0]),
            prefix: Prefix::for_origin(Asn(origin)),
            as_path: AsPath::from_u32s(p),
        }));
        let pr = prune_stub_ases(&d, &[]);
        assert!(!pr.removed.contains(&Asn(9)));
        assert!(pr.graph.contains(Asn(9)));
    }

    #[test]
    fn multihomed_stub_survives() {
        let d = dataset();
        let pr = prune_stub_ases(&d, &[Asn(1), Asn(2)]);
        assert!(!pr.removed.contains(&Asn(5)));
        assert!(pr.graph.contains(Asn(5)));
    }

    #[test]
    fn no_dropped_routes_in_clean_data() {
        let d = dataset();
        let pr = prune_stub_ases(&d, &[Asn(1), Asn(2)]);
        assert_eq!(pr.routes_dropped, 0);
        assert_eq!(pr.dataset.len(), d.len());
    }
}
