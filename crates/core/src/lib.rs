//! # quasar-core — an AS-topology model that captures route diversity
//!
//! The primary contribution of *"Building an AS-topology model that
//! captures route diversity"* (Mühlbauer, Feldmann, Maennel, Roughan,
//! Uhlig — SIGCOMM 2006), reimplemented in Rust:
//!
//! * [`observed`] — observation-point datasets with the paper's cleaning
//!   and training/validation splits (by point, by origin, combined; §4.2);
//! * [`prep`] — single-homed-stub pruning with path transfer (§3.1);
//! * [`model`] — the [`model::AsRoutingModel`]: multiple **quasi-routers**
//!   per AS (logical partitions of its route selection, not physical
//!   routers), per-prefix MED rankings and filters, the paper's
//!   `ASN << 16 | index` router-id scheme (§4.1/§4.5);
//! * [`refine`] — the iterative refinement heuristic that makes the model
//!   reproduce every training path exactly (§4.4–§4.6);
//! * [`metrics`] — RIB-In / potential RIB-Out / RIB-Out match levels and
//!   per-prefix coverage (§4.2);
//! * [`predict`] — parallel evaluation of predictions on held-out data
//!   (§4.7);
//! * [`baseline`] — the §3.3 single-router baselines (shortest path and
//!   inferred-relationship policies) behind Table 2.
//!
//! ## Quick start
//! ```
//! use quasar_core::prelude::*;
//! use quasar_bgpsim::prelude::*;
//!
//! // Observed routes: AS1 reaches AS3's prefix via AS4 (not the
//! // tie-break default AS2).
//! let routes = vec![
//!     ObservedRoute {
//!         point: 0,
//!         observer_as: Asn(1),
//!         prefix: Prefix::for_origin(Asn(3)),
//!         as_path: AsPath::from_u32s(&[1, 4, 3]),
//!     },
//!     ObservedRoute {
//!         point: 1,
//!         observer_as: Asn(2),
//!         prefix: Prefix::for_origin(Asn(3)),
//!         as_path: AsPath::from_u32s(&[2, 3]),
//!     },
//! ];
//! let dataset = Dataset::new(routes);
//! let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
//! let report = refine(&mut model, &dataset, &RefineConfig::default()).unwrap();
//! assert!(report.converged());
//! let ev = evaluate(&model, &dataset);
//! assert_eq!(ev.counts.rib_out, ev.counts.total); // exact reproduction
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors (or `expect` with an
// invariant message, annotated at the use site); unit tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod atoms;
pub mod audit;
pub mod backoff;
pub mod baseline;
pub mod diagnostics;
pub mod incremental;
pub mod metrics;
pub mod model;
pub mod observed;
pub mod persist;
pub mod predict;
pub mod prep;
pub mod refine;
pub mod whatif;

/// Commonly used names.
pub mod prelude {
    pub use crate::atoms::{refine_with_atoms, PolicyAtoms};
    pub use crate::backoff::{splitmix64, Backoff};
    pub use crate::baseline::{relationship_model, shortest_path_model, table2_row, Table2Row};
    pub use crate::diagnostics::{diagnose, MismatchDiagnostics};
    pub use crate::incremental::{IncrementalReport, IncrementalTrainer, TrainMode};
    pub use crate::metrics::{
        match_level, mismatch_reason, MatchCounts, MatchLevel, MismatchReason, PrefixCoverage,
    };
    pub use crate::model::{AsRoutingModel, ModelStats};
    pub use crate::observed::{Dataset, ObservedRoute};
    pub use crate::persist::{atomic_write_bytes, load_model, save_model, PersistError};
    pub use crate::predict::{
        evaluate, evaluate_prefix, predict_route, Evaluation, RoutePrediction,
    };
    pub use crate::prep::{prune_stub_ases, PrunedDataset};
    pub use crate::refine::{
        refine, refine_checkpointed, refine_prefix, resume_refine, CheckpointPolicy, PrefixOutcome,
        RankingAttr, RefineConfig, RefineError, RefineReport,
    };
    pub use crate::whatif::{apply_change, Change, Impact, RoutingDiff, Scenario};
}
