//! Match metrics between simulated and observed routes (paper §4.2).
//!
//! "We measure the degree of mismatch by determining if a route with the
//! AS-path is received by a quasi-router within an AS (RIB-In), if it is
//! selected by a quasi-router (RIB-Out), or if it could have been selected
//! but was not due to an unlucky decision in the last step of the BGP
//! decision process, the tie-breaker (potential RIB-Out)."

use crate::observed::{Dataset, ObservedRoute};
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::decision::Step;
use quasar_bgpsim::engine::SimulationResult;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How well the model reproduced one observed route, ordered from best to
/// worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MatchLevel {
    /// Some quasi-router selected the observed path as best (§4.2 RIB-Out
    /// match).
    RibOut,
    /// Some quasi-router received the path and lost it only in the final
    /// lowest-router-id tie-break (§4.2 potential RIB-Out match).
    PotentialRibOut,
    /// Some quasi-router received the path but eliminated it earlier.
    RibIn,
    /// No quasi-router of the AS ever learned the path.
    None,
}

/// Why a route failed to be a RIB-Out match — the mismatch taxonomy of
/// Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MismatchReason {
    /// "AS-path not available": no RIB-In match.
    NotAvailable,
    /// "shorter AS-path exists": the path was available but every selected
    /// best is shorter than the observed path.
    ShorterPathSelected,
    /// "lowest neighbor ID": the path survived to the final tie-break and
    /// lost there.
    TieBreakLost,
    /// The path was available and equal-or-longer bests were chosen for
    /// other reasons (policy steps).
    OtherPolicy,
}

/// Computes the match level of one observed route against the simulation
/// of its prefix. `routers` are the quasi-routers of the observing AS.
///
/// The observed path includes the observer AS at its head; the quasi-
/// router's Loc-RIB holds the path *without* it, so the comparison target
/// is the observed path minus its head.
pub fn match_level(
    result: &SimulationResult,
    routers: &[RouterId],
    observed_path: &AsPath,
) -> MatchLevel {
    let target = observed_path.suffix(observed_path.len().saturating_sub(1));
    let mut best_level = MatchLevel::None;
    for &r in routers {
        let Some(rib) = result.rib(r) else { continue };
        for (i, c) in rib.candidates.iter().enumerate() {
            if c.as_path != target {
                continue;
            }
            let level = match rib.outcome.eliminated_at[i] {
                None => MatchLevel::RibOut,
                Some(Step::TieBreak) => MatchLevel::PotentialRibOut,
                Some(_) => MatchLevel::RibIn,
            };
            if level < best_level {
                best_level = level;
            }
        }
    }
    best_level
}

/// Classifies a non-RIB-Out route into the Table 2 mismatch taxonomy.
pub fn mismatch_reason(
    result: &SimulationResult,
    routers: &[RouterId],
    observed_path: &AsPath,
) -> MismatchReason {
    match match_level(result, routers, observed_path) {
        MatchLevel::RibOut => unreachable!("caller filters RIB-Out matches"),
        MatchLevel::PotentialRibOut => MismatchReason::TieBreakLost,
        MatchLevel::None => MismatchReason::NotAvailable,
        MatchLevel::RibIn => {
            let target_len = observed_path.len().saturating_sub(1);
            let any_shorter_best = routers.iter().any(|&r| {
                result
                    .best_route(r)
                    .is_some_and(|b| b.as_path.len() < target_len)
            });
            if any_shorter_best {
                MismatchReason::ShorterPathSelected
            } else {
                MismatchReason::OtherPolicy
            }
        }
    }
}

/// Aggregate counts over a dataset evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchCounts {
    /// Total observed routes evaluated.
    pub total: usize,
    /// RIB-Out matches.
    pub rib_out: usize,
    /// Potential RIB-Out matches (tie-break losses).
    pub potential_rib_out: usize,
    /// RIB-In-only matches.
    pub rib_in: usize,
    /// Paths the model never delivered to the AS.
    pub none: usize,
}

impl MatchCounts {
    /// Records one level.
    pub fn record(&mut self, level: MatchLevel) {
        self.total += 1;
        match level {
            MatchLevel::RibOut => self.rib_out += 1,
            MatchLevel::PotentialRibOut => self.potential_rib_out += 1,
            MatchLevel::RibIn => self.rib_in += 1,
            MatchLevel::None => self.none += 1,
        }
    }

    /// Fraction with an exact RIB-Out match.
    pub fn rib_out_rate(&self) -> f64 {
        self.rate(self.rib_out)
    }

    /// Fraction matched "down to the final BGP tie break" — RIB-Out plus
    /// potential RIB-Out (the abstract's >80% headline metric).
    pub fn tie_break_rate(&self) -> f64 {
        self.rate(self.rib_out + self.potential_rib_out)
    }

    /// Fraction where the path at least reached the AS (upper bound on
    /// achievable prediction accuracy, §4.2).
    pub fn rib_in_rate(&self) -> f64 {
        self.rate(self.rib_out + self.potential_rib_out + self.rib_in)
    }

    fn rate(&self, n: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &MatchCounts) {
        self.total += other.total;
        self.rib_out += other.rib_out;
        self.potential_rib_out += other.potential_rib_out;
        self.rib_in += other.rib_in;
        self.none += other.none;
    }
}

/// Per-prefix coverage: "we count for how many prefixes we find RIB-Out
/// matches for at least 50%, 90%, or 100% of their respective unique
/// AS-paths" (§4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PrefixCoverage {
    /// Prefixes evaluated.
    pub prefixes: usize,
    /// Prefixes with ≥50 % of unique paths RIB-Out matched.
    pub at_least_50: usize,
    /// Prefixes with ≥90 % of unique paths RIB-Out matched.
    pub at_least_90: usize,
    /// Prefixes with every unique path RIB-Out matched.
    pub full: usize,
}

impl PrefixCoverage {
    /// Records one prefix's (matched, unique) path counts.
    pub fn record(&mut self, matched: usize, unique: usize) {
        if unique == 0 {
            return;
        }
        self.prefixes += 1;
        let frac = matched as f64 / unique as f64;
        if frac >= 0.5 {
            self.at_least_50 += 1;
        }
        if frac >= 0.9 {
            self.at_least_90 += 1;
        }
        if matched == unique {
            self.full += 1;
        }
    }
}

/// Groups a dataset's observed routes per prefix, deduplicating identical
/// (observer AS, path) pairs — the unit the metrics count.
pub fn unique_routes_by_prefix(dataset: &Dataset) -> BTreeMap<Prefix, Vec<(Asn, AsPath)>> {
    let mut out: BTreeMap<Prefix, Vec<(Asn, AsPath)>> = BTreeMap::new();
    for ObservedRoute {
        observer_as,
        prefix,
        as_path,
        ..
    } in dataset.routes()
    {
        out.entry(*prefix)
            .or_default()
            .push((*observer_as, as_path.clone()));
    }
    for v in out.values_mut() {
        v.sort();
        v.dedup();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AsRoutingModel;
    use quasar_topology::graph::AsGraph;

    /// Diamond 1-2-3 / 1-4-3 with prefix at 3: AS1 selects "2 3" (lower
    /// neighbor id), "4 3" is a tie-break loser.
    fn setup() -> (AsRoutingModel, SimulationResult, Prefix) {
        let paths = vec![AsPath::from_u32s(&[1, 2, 3]), AsPath::from_u32s(&[1, 4, 3])];
        let graph = AsGraph::from_paths(&paths);
        let p = Prefix::for_origin(Asn(3));
        let mut origins = BTreeMap::new();
        origins.insert(p, Asn(3));
        let m = AsRoutingModel::initial(&graph, &origins);
        let res = m.simulate(p).unwrap();
        (m, res, p)
    }

    #[test]
    fn rib_out_detected() {
        let (m, res, _) = setup();
        let routers = m.quasi_routers_of(Asn(1));
        let observed = AsPath::from_u32s(&[1, 2, 3]);
        assert_eq!(match_level(&res, &routers, &observed), MatchLevel::RibOut);
    }

    #[test]
    fn potential_rib_out_detected() {
        let (m, res, _) = setup();
        let routers = m.quasi_routers_of(Asn(1));
        let observed = AsPath::from_u32s(&[1, 4, 3]);
        assert_eq!(
            match_level(&res, &routers, &observed),
            MatchLevel::PotentialRibOut
        );
        assert_eq!(
            mismatch_reason(&res, &routers, &observed),
            MismatchReason::TieBreakLost
        );
    }

    #[test]
    fn none_when_path_never_arrives() {
        let (m, res, _) = setup();
        let routers = m.quasi_routers_of(Asn(1));
        let observed = AsPath::from_u32s(&[1, 9, 3]);
        assert_eq!(match_level(&res, &routers, &observed), MatchLevel::None);
        assert_eq!(
            mismatch_reason(&res, &routers, &observed),
            MismatchReason::NotAvailable
        );
    }

    #[test]
    fn origin_observation_is_rib_out() {
        let (m, res, _) = setup();
        let routers = m.quasi_routers_of(Asn(3));
        let observed = AsPath::from_u32s(&[3]);
        assert_eq!(match_level(&res, &routers, &observed), MatchLevel::RibOut);
    }

    #[test]
    fn counts_and_rates() {
        let mut c = MatchCounts::default();
        c.record(MatchLevel::RibOut);
        c.record(MatchLevel::RibOut);
        c.record(MatchLevel::PotentialRibOut);
        c.record(MatchLevel::None);
        assert_eq!(c.total, 4);
        assert!((c.rib_out_rate() - 0.5).abs() < 1e-12);
        assert!((c.tie_break_rate() - 0.75).abs() < 1e-12);
        assert!((c.rib_in_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_thresholds() {
        let mut cov = PrefixCoverage::default();
        cov.record(1, 2); // 50%
        cov.record(9, 10); // 90%
        cov.record(3, 3); // 100%
        cov.record(0, 5); // 0%
        assert_eq!(cov.prefixes, 4);
        assert_eq!(cov.at_least_50, 3);
        assert_eq!(cov.at_least_90, 2);
        assert_eq!(cov.full, 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MatchCounts::default();
        a.record(MatchLevel::RibOut);
        let mut b = MatchCounts::default();
        b.record(MatchLevel::None);
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.none, 1);
    }
}
