//! Crash-safe persistence of models and training artifacts.
//!
//! Every artifact the pipeline writes to disk goes through one of two
//! doors:
//!
//! * [`atomic_write_bytes`] — raw bytes (MRT dumps, CSV tables) written
//!   with the classic *tmp + fsync + rename + fsync(dir)* protocol, so a
//!   crash mid-write can never leave a truncated file under the final
//!   name: readers see either the old content or the new one, never a
//!   torn mix.
//! * [`save_artifact`] / [`load_artifact`] — self-describing artifacts
//!   (trained models, refinement checkpoints) framed by a one-line
//!   versioned header carrying the artifact kind, the payload length and
//!   an FNV-1a checksum:
//!
//!   ```text
//!   QUASAR1 model 182733 9f0e4c61b2a7d455\n
//!   {"net":{...}}
//!   ```
//!
//!   Loads verify the frame and return a typed [`PersistError`] naming
//!   the byte offset of the first problem — a truncated payload, a
//!   checksum mismatch, a mangled header — instead of a raw serde panic
//!   or a misleading parse error deep inside the payload.
//!
//! Models written by earlier versions of `quasar train` are bare JSON
//! with no header; [`load_model`] detects the missing magic and reads
//! them transparently, so old artifacts keep working.

use crate::model::AsRoutingModel;
use std::fmt;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic token opening every framed artifact (version 1 of the frame).
pub const MAGIC: &str = "QUASAR1";

/// Artifact kind string for trained models.
pub const KIND_MODEL: &str = "model";

/// Artifact kind string for refinement checkpoints.
pub const KIND_CHECKPOINT: &str = "refine-checkpoint";

/// FNV-1a 64-bit checksum — the frame's integrity check. Not
/// cryptographic: it detects corruption (torn writes, bit rot, truncated
/// copies), not tampering.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What went wrong persisting or loading an artifact. Every variant
/// names the file; corruption variants name the byte offset where the
/// problem starts.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file (or directory) the operation targeted.
        path: PathBuf,
        /// Which step failed (`"write"`, `"rename"`, `"sync"`, ...).
        op: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// The header line is not `QUASAR1 <kind> <len> <checksum>`.
    BadHeader {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the first malformed header element.
        offset: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// The payload is shorter than the header's declared length — the
    /// classic signature of a crash mid-write (which the atomic writer
    /// makes impossible for its own outputs) or a truncated copy.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The payload does not hash to the header's checksum.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// The artifact is a valid frame of the wrong kind (e.g. a
    /// checkpoint passed to `--model`).
    KindMismatch {
        /// The offending file.
        path: PathBuf,
        /// The kind the caller asked for.
        expected: String,
        /// The kind the header declares.
        found: String,
    },
    /// The payload passed the frame checks but is not valid JSON for the
    /// expected type.
    Json {
        /// The offending file.
        path: PathBuf,
        /// Byte offset where the payload starts (0 for legacy bare-JSON
        /// files; the parser's own message pinpoints the error within
        /// the payload).
        offset: usize,
        /// The parser's diagnosis.
        detail: String,
    },
    /// A checkpoint directory holds no loadable checkpoint.
    NoCheckpoint {
        /// The directory that was scanned.
        dir: PathBuf,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, op, source } => {
                write!(f, "{op} {} failed: {source}", path.display())
            }
            PersistError::BadHeader {
                path,
                offset,
                detail,
            } => write!(
                f,
                "{}: corrupt artifact header at byte {offset}: {detail}",
                path.display()
            ),
            PersistError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: truncated payload at byte {actual} (header declares {expected} bytes)",
                path.display()
            ),
            PersistError::ChecksumMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: checksum mismatch (header {expected:016x}, payload hashes to {actual:016x})",
                path.display()
            ),
            PersistError::KindMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: artifact is a `{found}`, expected a `{expected}`",
                path.display()
            ),
            PersistError::Json {
                path,
                offset,
                detail,
            } => write!(
                f,
                "{}: payload (starting at byte {offset}) is not a valid artifact: {detail}",
                path.display()
            ),
            PersistError::NoCheckpoint { dir } => {
                write!(f, "{}: no loadable checkpoint found", dir.display())
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    /// True for the variants that mean "the bytes on disk are damaged"
    /// (as opposed to the file being missing or unreadable).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            PersistError::BadHeader { .. }
                | PersistError::Truncated { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::Json { .. }
        )
    }

    /// A recovery hint suitable for CLI error output, when one applies.
    pub fn hint(&self) -> Option<&'static str> {
        if self.is_corruption() {
            Some(
                "the artifact is damaged; re-run `quasar train`, or resume an \
                 interrupted training run from its checkpoint directory with \
                 `quasar train ... --checkpoint-dir D --resume`",
            )
        } else {
            None
        }
    }

    fn io(path: &Path, op: &'static str, source: std::io::Error) -> Self {
        PersistError::Io {
            path: path.to_path_buf(),
            op,
            source,
        }
    }
}

/// Failpoint helper: maps an armed `error` action at `point` to an
/// injected I/O error, so tests can fault any persistence step.
#[cfg(feature = "testkit")]
fn inject_io(point: &'static str, path: &Path) -> Result<(), PersistError> {
    if quasar_bgpsim::fail::inject(point) {
        return Err(PersistError::io(
            path,
            "write",
            std::io::Error::other(format!("fault injected by failpoint `{point}`")),
        ));
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: the data lands in a temporary
/// file in the same directory, is fsynced, and is renamed over the final
/// name (then the directory entry is fsynced). A reader — or a crash —
/// can observe the old file or the new file, never a partial one.
pub fn atomic_write_bytes(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), PersistError> {
    let path = path.as_ref();
    #[cfg(feature = "testkit")]
    inject_io("persist.write", path)?;
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            PersistError::io(
                path,
                "resolve",
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));

    let result = (|| {
        let mut f = File::create(&tmp).map_err(|e| PersistError::io(&tmp, "create", e))?;
        f.write_all(bytes)
            .map_err(|e| PersistError::io(&tmp, "write", e))?;
        f.sync_all()
            .map_err(|e| PersistError::io(&tmp, "sync", e))?;
        drop(f);
        #[cfg(feature = "testkit")]
        inject_io("persist.rename", path)?;
        fs::rename(&tmp, path).map_err(|e| PersistError::io(path, "rename", e))?;
        // Persist the directory entry too; some filesystems do not offer
        // directory fsync, so a failure here is not fatal to atomicity
        // of the content itself.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Frames `payload` with the versioned header and writes it atomically.
pub fn save_artifact(
    path: impl AsRef<Path>,
    kind: &str,
    payload: &[u8],
) -> Result<(), PersistError> {
    let header = format!("{MAGIC} {kind} {} {:016x}\n", payload.len(), fnv1a(payload));
    let mut bytes = Vec::with_capacity(header.len() + payload.len());
    bytes.extend_from_slice(header.as_bytes());
    bytes.extend_from_slice(payload);
    atomic_write_bytes(path, &bytes)
}

/// Reads and verifies a framed artifact of `kind`, returning the payload
/// and whether the file was a legacy (headerless) artifact. Legacy files
/// — anything not starting with the magic — are returned as-is with no
/// integrity check, which is exactly the guarantee they were written
/// under.
pub fn load_artifact(path: impl AsRef<Path>, kind: &str) -> Result<(Vec<u8>, bool), PersistError> {
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| PersistError::io(path, "read", e))?;
    let magic_prefix = format!("{MAGIC} ");
    if !bytes.starts_with(magic_prefix.as_bytes()) {
        return Ok((bytes, true));
    }
    let bad = |offset: usize, detail: String| PersistError::BadHeader {
        path: path.to_path_buf(),
        offset,
        detail,
    };
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| bad(bytes.len(), "unterminated header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|e| bad(e.valid_up_to(), "header is not UTF-8".into()))?;
    let mut fields = header.split(' ');
    let _magic = fields.next(); // verified by the prefix check
    let found_kind = fields
        .next()
        .ok_or_else(|| bad(magic_prefix.len(), "missing artifact kind".into()))?;
    let len_field = fields
        .next()
        .ok_or_else(|| bad(newline, "missing payload length".into()))?;
    let sum_field = fields
        .next()
        .ok_or_else(|| bad(newline, "missing checksum".into()))?;
    if fields.next().is_some() {
        return Err(bad(newline, "trailing header fields".into()));
    }
    let expected_len: usize = len_field.parse().map_err(|_| {
        bad(
            magic_prefix.len() + found_kind.len() + 1,
            format!("payload length `{len_field}` is not a number"),
        )
    })?;
    let expected_sum = u64::from_str_radix(sum_field, 16).map_err(|_| {
        bad(
            newline.saturating_sub(sum_field.len()),
            format!("checksum `{sum_field}` is not 16 hex digits"),
        )
    })?;
    if found_kind != kind {
        return Err(PersistError::KindMismatch {
            path: path.to_path_buf(),
            expected: kind.to_string(),
            found: found_kind.to_string(),
        });
    }
    let payload = &bytes[newline + 1..];
    if payload.len() != expected_len {
        return Err(PersistError::Truncated {
            path: path.to_path_buf(),
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_sum = fnv1a(payload);
    if actual_sum != expected_sum {
        return Err(PersistError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: expected_sum,
            actual: actual_sum,
        });
    }
    Ok((payload.to_vec(), false))
}

/// Serializes `model` and writes it as a framed `model` artifact.
pub fn save_model(path: impl AsRef<Path>, model: &AsRoutingModel) -> Result<(), PersistError> {
    let path = path.as_ref();
    let json = model.to_json().map_err(|e| PersistError::Json {
        path: path.to_path_buf(),
        offset: 0,
        detail: e.to_string(),
    })?;
    save_artifact(path, KIND_MODEL, json.as_bytes())
}

/// Loads a model written by [`save_model`] — or a legacy bare-JSON model
/// from before the framed format existed. Frame damage and payload
/// parse failures both come back as typed [`PersistError`]s, never a
/// panic.
pub fn load_model(path: impl AsRef<Path>) -> Result<AsRoutingModel, PersistError> {
    let path = path.as_ref();
    let (payload, legacy) = load_artifact(path, KIND_MODEL)?;
    let offset = if legacy {
        0
    } else {
        // Payload starts right after the header line.
        fs::metadata(path)
            .map(|m| (m.len() as usize).saturating_sub(payload.len()))
            .unwrap_or(0)
    };
    let json = std::str::from_utf8(&payload).map_err(|e| PersistError::Json {
        path: path.to_path_buf(),
        offset: offset + e.valid_up_to(),
        detail: "payload is not UTF-8".into(),
    })?;
    AsRoutingModel::from_json(json).map_err(|e| PersistError::Json {
        path: path.to_path_buf(),
        offset,
        detail: e.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Checkpoint directories
// ---------------------------------------------------------------------------

/// The file name of the checkpoint written after `round`.
pub fn checkpoint_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("ckpt-r{round:08}.qck"))
}

/// Rounds with a checkpoint file in `dir`, descending (newest first).
pub fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(round) = name
            .strip_prefix("ckpt-r")
            .and_then(|s| s.strip_suffix(".qck"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((round, entry.path()));
        }
    }
    out.sort_by_key(|&(round, _)| std::cmp::Reverse(round));
    out
}

/// Writes a checkpoint payload for `round` into `dir` (creating it) and
/// prunes older checkpoints beyond the newest `keep`.
pub fn save_checkpoint_payload(
    dir: &Path,
    round: u64,
    payload: &[u8],
    keep: usize,
) -> Result<(), PersistError> {
    fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, "create dir", e))?;
    save_artifact(checkpoint_path(dir, round), KIND_CHECKPOINT, payload)?;
    for (_, path) in list_checkpoints(dir).into_iter().skip(keep.max(1)) {
        let _ = fs::remove_file(path);
    }
    Ok(())
}

/// Loads the newest checkpoint payload in `dir` that passes the frame
/// checks, falling back to older checkpoints when the newest is damaged
/// — the recovery path for a crash that somehow tore a checkpoint (e.g.
/// one written by a pre-atomic writer or a damaged disk).
pub fn load_latest_checkpoint_payload(dir: &Path) -> Result<(u64, Vec<u8>), PersistError> {
    let candidates = list_checkpoints(dir);
    let mut last_err: Option<PersistError> = None;
    for (round, path) in candidates {
        match load_artifact(&path, KIND_CHECKPOINT) {
            Ok((payload, false)) => return Ok((round, payload)),
            // A headerless file under a checkpoint name is not trusted.
            Ok((_, true)) => {
                last_err = Some(PersistError::BadHeader {
                    path,
                    offset: 0,
                    detail: "checkpoint has no artifact header".into(),
                });
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(PersistError::NoCheckpoint {
        dir: dir.to_path_buf(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("quasar-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn artifact_roundtrip_and_legacy_fallback() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.bin");
        save_artifact(&path, "model", b"{\"x\":1}").unwrap();
        let (payload, legacy) = load_artifact(&path, "model").unwrap();
        assert_eq!(payload, b"{\"x\":1}");
        assert!(!legacy);

        let bare = dir.join("bare.json");
        fs::write(&bare, b"{\"x\":2}").unwrap();
        let (payload, legacy) = load_artifact(&bare, "model").unwrap();
        assert_eq!(payload, b"{\"x\":2}");
        assert!(legacy);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_mismatch_and_checksum_and_truncation_are_typed() {
        let dir = tmp_dir("typed");
        let path = dir.join("a.bin");
        save_artifact(&path, KIND_CHECKPOINT, b"payload").unwrap();
        assert!(matches!(
            load_artifact(&path, KIND_MODEL),
            Err(PersistError::KindMismatch { .. })
        ));

        // Flip one payload byte: checksum mismatch.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_artifact(&path, KIND_CHECKPOINT),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        // Drop trailing payload bytes: truncation, reported before any
        // checksum confusion.
        save_artifact(&path, KIND_CHECKPOINT, b"payload").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        match load_artifact(&path, KIND_CHECKPOINT) {
            Err(PersistError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!(expected, 7);
                assert_eq!(actual, 4);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_listing_pruning_and_fallback() {
        let dir = tmp_dir("ckpt");
        save_checkpoint_payload(&dir, 1, b"one", 2).unwrap();
        save_checkpoint_payload(&dir, 2, b"two", 2).unwrap();
        save_checkpoint_payload(&dir, 3, b"three", 2).unwrap();
        // Round 1 pruned, 2 and 3 kept.
        let rounds: Vec<u64> = list_checkpoints(&dir).iter().map(|(r, _)| *r).collect();
        assert_eq!(rounds, vec![3, 2]);
        let (round, payload) = load_latest_checkpoint_payload(&dir).unwrap();
        assert_eq!((round, payload.as_slice()), (3, b"three".as_slice()));

        // Damage the newest: loader falls back to round 2.
        let newest = checkpoint_path(&dir, 3);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let (round, payload) = load_latest_checkpoint_payload(&dir).unwrap();
        assert_eq!((round, payload.as_slice()), (2, b"two".as_slice()));

        let empty = tmp_dir("ckpt-empty");
        assert!(matches!(
            load_latest_checkpoint_payload(&empty),
            Err(PersistError::NoCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&empty);
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = tmp_dir("atomic");
        let path = dir.join("out.bin");
        atomic_write_bytes(&path, b"hello").unwrap();
        atomic_write_bytes(&path, b"world").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"world");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["out.bin".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
