//! Observed-route datasets and training/validation splits (paper §4.2).
//!
//! "For a fair evaluation we need one dataset to derive the AS-routing
//! model, called training, and another separate one, called validation...
//! We divide the available BGP data randomly into two subsets by assigning
//! observation points to either subset." The alternative split — "according
//! to the originating ASes" — and the combination of both are also
//! provided.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_topology::graph::AsGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One observed route: `(observation point, prefix, AS-path)`, the path
/// observer-first (the observer's own AS is the head).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObservedRoute {
    /// Observation-point (feed) identifier.
    pub point: u32,
    /// AS hosting the observation point.
    pub observer_as: Asn,
    /// Destination prefix.
    pub prefix: Prefix,
    /// Observer-first AS-path; its last element is the origin AS.
    pub as_path: AsPath,
}

/// A cleaned set of observed routes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    routes: Vec<ObservedRoute>,
}

impl Dataset {
    /// Builds a dataset, applying the paper's cleaning (§3.1): AS-path
    /// prepending is stripped, paths with loops are dropped, and paths
    /// whose head disagrees with the observer AS are dropped (feed
    /// inconsistency).
    pub fn new(routes: impl IntoIterator<Item = ObservedRoute>) -> Self {
        let mut cleaned: Vec<ObservedRoute> = routes
            .into_iter()
            .filter_map(|mut r| {
                r.as_path = r.as_path.strip_prepending();
                if r.as_path.has_loop() || r.as_path.head() != Some(r.observer_as) {
                    None
                } else {
                    Some(r)
                }
            })
            .collect();
        cleaned.sort();
        cleaned.dedup();
        Dataset { routes: cleaned }
    }

    /// All routes, sorted.
    pub fn routes(&self) -> &[ObservedRoute] {
        &self.routes
    }

    /// Number of observed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The distinct observation points, ascending.
    pub fn observation_points(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.routes.iter().map(|r| r.point).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The distinct prefixes with their origin AS (the last AS of any
    /// observed path for the prefix). Prefixes observed with conflicting
    /// origins (MOAS) keep the lexicographically smallest origin.
    pub fn prefixes(&self) -> BTreeMap<Prefix, Asn> {
        let mut out: BTreeMap<Prefix, Asn> = BTreeMap::new();
        for r in &self.routes {
            if let Some(o) = r.as_path.origin() {
                out.entry(r.prefix)
                    .and_modify(|e| *e = (*e).min(o))
                    .or_insert(o);
            }
        }
        out
    }

    /// The distinct origin ASes.
    pub fn origins(&self) -> BTreeSet<Asn> {
        self.prefixes().values().copied().collect()
    }

    /// All distinct AS-paths in the dataset.
    pub fn paths(&self) -> Vec<AsPath> {
        let mut v: Vec<AsPath> = self.routes.iter().map(|r| r.as_path.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// AS graph derived from *all* paths — the paper derives the initial
    /// model's graph from training and validation feeds together (§4.5).
    pub fn as_graph(&self) -> AsGraph {
        AsGraph::from_paths(self.routes.iter().map(|r| &r.as_path))
    }

    /// Routes for one prefix.
    pub fn routes_for(&self, prefix: Prefix) -> impl Iterator<Item = &ObservedRoute> {
        self.routes.iter().filter(move |r| r.prefix == prefix)
    }

    /// Distinct observed AS-paths per (observer AS, origin AS) pair —
    /// the quantity behind Figure 2.
    pub fn paths_per_as_pair(&self) -> BTreeMap<(Asn, Asn), BTreeSet<AsPath>> {
        let mut out: BTreeMap<(Asn, Asn), BTreeSet<AsPath>> = BTreeMap::new();
        for r in &self.routes {
            if let Some(origin) = r.as_path.origin() {
                out.entry((r.observer_as, origin))
                    .or_default()
                    .insert(r.as_path.clone());
            }
        }
        out
    }

    /// Splits by observation point: each point's routes land wholly in one
    /// side. `train_fraction` of the points (rounded up) go to training.
    pub fn split_by_point(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut points = self.observation_points();
        let mut rng = StdRng::seed_from_u64(seed);
        points.shuffle(&mut rng);
        let n_train = ((points.len() as f64) * train_fraction).ceil() as usize;
        let train_points: BTreeSet<u32> = points.into_iter().take(n_train).collect();
        self.partition(|r| train_points.contains(&r.point))
    }

    /// Splits by originating AS: all routes towards an origin land wholly
    /// in one side.
    pub fn split_by_origin(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut origins: Vec<Asn> = self.origins().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        origins.shuffle(&mut rng);
        let n_train = ((origins.len() as f64) * train_fraction).ceil() as usize;
        let train_origins: BTreeSet<Asn> = origins.into_iter().take(n_train).collect();
        self.partition(|r| {
            r.as_path
                .origin()
                .is_some_and(|o| train_origins.contains(&o))
        })
    }

    /// Combined split (§4.2: "one can combine both approaches"): training =
    /// training points × training origins; validation = held-out points ×
    /// held-out origins. Routes in the mixed quadrants are discarded, so
    /// the validation set shares neither vantage point nor origin with
    /// training.
    pub fn split_combined(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let (p_train, _) = self.split_by_point(train_fraction, seed);
        let train_points: BTreeSet<u32> = p_train.observation_points().into_iter().collect();
        let mut origins: Vec<Asn> = self.origins().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        origins.shuffle(&mut rng);
        let n_train = ((origins.len() as f64) * train_fraction).ceil() as usize;
        let train_origins: BTreeSet<Asn> = origins.into_iter().take(n_train).collect();

        let mut train = Vec::new();
        let mut valid = Vec::new();
        for r in &self.routes {
            let Some(o) = r.as_path.origin() else {
                continue;
            };
            let tp = train_points.contains(&r.point);
            let to = train_origins.contains(&o);
            if tp && to {
                train.push(r.clone());
            } else if !tp && !to {
                valid.push(r.clone());
            }
        }
        (Dataset { routes: train }, Dataset { routes: valid })
    }

    fn partition(&self, pred: impl Fn(&ObservedRoute) -> bool) -> (Dataset, Dataset) {
        let (a, b): (Vec<ObservedRoute>, Vec<ObservedRoute>) =
            self.routes.iter().cloned().partition(pred);
        (Dataset { routes: a }, Dataset { routes: b })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(point: u32, path: &[u32], prefix_origin: u32) -> ObservedRoute {
        ObservedRoute {
            point,
            observer_as: Asn(path[0]),
            prefix: Prefix::for_origin(Asn(prefix_origin)),
            as_path: AsPath::from_u32s(path),
        }
    }

    fn sample() -> Dataset {
        Dataset::new(vec![
            route(0, &[1, 2, 3], 3),
            route(0, &[1, 4, 3], 3),
            route(1, &[2, 3], 3),
            route(1, &[2, 5], 5),
            route(2, &[4, 3], 3),
            route(2, &[4, 2, 5], 5),
        ])
    }

    #[test]
    fn cleaning_strips_prepending_and_loops() {
        let d = Dataset::new(vec![
            ObservedRoute {
                point: 0,
                observer_as: Asn(1),
                prefix: Prefix::for_origin(Asn(3)),
                as_path: AsPath::from_u32s(&[1, 1, 2, 2, 3]),
            },
            ObservedRoute {
                point: 0,
                observer_as: Asn(1),
                prefix: Prefix::for_origin(Asn(3)),
                as_path: AsPath::from_u32s(&[1, 2, 1, 3]),
            },
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.routes()[0].as_path, AsPath::from_u32s(&[1, 2, 3]));
    }

    #[test]
    fn head_mismatch_dropped() {
        let d = Dataset::new(vec![ObservedRoute {
            point: 0,
            observer_as: Asn(9),
            prefix: Prefix::for_origin(Asn(3)),
            as_path: AsPath::from_u32s(&[1, 2, 3]),
        }]);
        assert!(d.is_empty());
    }

    #[test]
    fn prefixes_and_origins() {
        let d = sample();
        let p = d.prefixes();
        assert_eq!(p.len(), 2);
        assert_eq!(p[&Prefix::for_origin(Asn(3))], Asn(3));
        assert_eq!(d.origins().len(), 2);
    }

    #[test]
    fn split_by_point_is_partition() {
        let d = sample();
        let (tr, va) = d.split_by_point(0.5, 7);
        assert_eq!(tr.len() + va.len(), d.len());
        // No point straddles the split.
        let tp: BTreeSet<u32> = tr.observation_points().into_iter().collect();
        for p in va.observation_points() {
            assert!(!tp.contains(&p));
        }
    }

    #[test]
    fn split_by_origin_is_partition() {
        let d = sample();
        let (tr, va) = d.split_by_origin(0.5, 7);
        assert_eq!(tr.len() + va.len(), d.len());
        for o in va.origins() {
            assert!(!tr.origins().contains(&o));
        }
    }

    #[test]
    fn combined_split_shares_nothing() {
        let d = sample();
        let (tr, va) = d.split_combined(0.5, 7);
        let tp: BTreeSet<u32> = tr.observation_points().into_iter().collect();
        for p in va.observation_points() {
            assert!(!tp.contains(&p));
        }
        for o in va.origins() {
            assert!(!tr.origins().contains(&o));
        }
    }

    #[test]
    fn splits_are_deterministic() {
        let d = sample();
        assert_eq!(d.split_by_point(0.5, 3), d.split_by_point(0.5, 3));
        // Only three 2-of-3 point splits exist, so the seed pair must be
        // chosen to land on different ones for the RNG in use.
        assert_ne!(
            d.split_by_point(0.5, 3).0.observation_points(),
            d.split_by_point(0.5, 2).0.observation_points()
        );
    }

    #[test]
    fn as_graph_covers_all_edges() {
        let d = sample();
        let g = d.as_graph();
        assert!(g.has_edge(Asn(1), Asn(2)));
        assert!(g.has_edge(Asn(4), Asn(3)));
    }

    #[test]
    fn pair_diversity_counts() {
        let d = sample();
        let pairs = d.paths_per_as_pair();
        assert_eq!(pairs[&(Asn(1), Asn(3))].len(), 2);
        assert_eq!(pairs[&(Asn(2), Asn(3))].len(), 1);
    }
}
