//! # quasar-stream — live BGP update ingestion with incremental model
//! maintenance and zero-downtime serve swaps
//!
//! The paper trains its AS-routing model from a *static* snapshot of
//! stable RIB entries (§3.1), and notes "In the future we are planning to
//! also incorporate the AS-path information from BGP updates". This crate
//! is that future: it keeps a trained model **continuously current**
//! against a BGP UPDATE stream without ever retraining the world or
//! dropping a query.
//!
//! The pipeline is four layers, each its own module:
//!
//! 1. [`ingest`] — replays an MRT BGP4MP file (or tails a growing one in
//!    follow mode) through the frame-at-a-time [`ingest::TailDecoder`]
//!    and batches records into bounded time/count
//!    [`ingest::UpdateWindow`]s, with backpressure: a bounded channel
//!    between the ingest thread and the trainer means a slow refine
//!    stalls reading instead of buffering updates without bound;
//! 2. [`delta`] — the [`delta::PathState`] mirror of the collector state
//!    machine (`reconstruct_stable` in `quasar-netgen`): applies each
//!    window's announcements/withdrawals to the observed-path set and
//!    emits the **exact set of prefixes whose path set changed** — an
//!    identical re-announcement dirties nothing;
//! 3. the incremental refiner — the window's dirty-prefix set drives
//!    [`quasar_core::incremental::IncrementalTrainer`], which re-refines
//!    only the affected refinement domains and replays the recorded
//!    repair trace for untouched prefixes, while producing a model
//!    **byte-identical** to a from-scratch retrain on the updated path
//!    set (the incremental-equals-full contract, enforced by the
//!    differential suite in `quasar-testkit`);
//! 4. [`pipeline`] — orchestrates the above, persists each epoch with the
//!    same artifact/checkpoint framing as `quasar train` (crash-safe:
//!    artifact first, trainer cache second, so a crash between windows
//!    resumes from a consistent pair), and pushes every epoch into a
//!    running `quasar-serve` through its validated atomic `reload` path:
//!    the swap is all-or-nothing, a rejected epoch leaves the old model
//!    serving, and in-flight queries always finish on the epoch they
//!    started with.
//!
//! Per-window metrics (updates parsed, prefixes dirtied, refine wall
//! time, swap latency) are pushed to the server via the `stream_report`
//! request — `quasar stream-stats ADDR` reads them back — and summarized
//! in a final JSON report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors (or `expect` with an
// invariant message, annotated at the use site); unit tests are exempt.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod delta;
pub mod ingest;
pub mod pipeline;

use quasar_core::persist::PersistError;
use quasar_core::refine::RefineError;
use quasar_mrt::error::MrtError;
use std::fmt;
use std::io;

/// Any failure of the streaming pipeline.
#[derive(Debug)]
pub enum StreamError {
    /// Reading the update source failed.
    Io(io::Error),
    /// The update source contained an undecodable MRT frame.
    Mrt(MrtError),
    /// Refinement (or the trainer cache) failed.
    Refine(RefineError),
    /// Persisting an epoch artifact failed.
    Persist(PersistError),
    /// The trained model could not be rendered to the artifact format.
    Encode(String),
    /// Talking to the query server failed (transport level — a reload
    /// *rejection* is not an error; the pipeline keeps going).
    Serve(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "update source I/O failed: {e}"),
            StreamError::Mrt(e) => write!(f, "undecodable MRT frame: {e}"),
            StreamError::Refine(e) => write!(f, "incremental refinement failed: {e}"),
            StreamError::Persist(e) => write!(f, "cannot persist epoch artifact: {e}"),
            StreamError::Encode(msg) => write!(f, "cannot encode model artifact: {msg}"),
            StreamError::Serve(msg) => write!(f, "query-server transport failed: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<MrtError> for StreamError {
    fn from(e: MrtError) -> Self {
        StreamError::Mrt(e)
    }
}

impl From<RefineError> for StreamError {
    fn from(e: RefineError) -> Self {
        StreamError::Refine(e)
    }
}

impl From<PersistError> for StreamError {
    fn from(e: PersistError) -> Self {
        StreamError::Persist(e)
    }
}

/// Commonly used names.
pub mod prelude {
    pub use crate::client::ServeClient;
    pub use crate::delta::{AppliedWindow, PathState};
    pub use crate::ingest::{TailDecoder, UpdateWindow, Windower};
    pub use crate::pipeline::{Pipeline, StreamConfig, StreamRunReport};
    pub use crate::StreamError;
}
