//! The streaming pipeline: ingest → delta → incremental refine → swap.
//!
//! [`Pipeline::run_file`] owns the whole loop. An ingest thread reads the
//! update source (once, or tailing it in follow mode), decodes frames
//! through [`TailDecoder`], batches them with
//! [`Windower`], and hands finished windows over
//! a **bounded** channel — when refinement falls behind, the channel fills
//! and the reader stalls instead of buffering updates without bound.
//!
//! Each window then goes through [`Pipeline::process_window`]:
//!
//! 1. apply the records to the live [`PathState`], extracting the exact
//!    dirty-prefix set — an all-clean window with a warm trainer skips
//!    everything below (`mode = "no_change"`);
//! 2. retrain through [`IncrementalTrainer`], which reuses cached domain
//!    deltas for untouched domains yet produces a model byte-identical to
//!    a from-scratch retrain;
//! 3. persist the epoch with the *same* artifact recipe as `quasar train`
//!    (MED generalization → JSON → `save_artifact`), so a streamed epoch
//!    and an offline retrain of the same path set are interchangeable
//!    files; the trainer cache is saved **after** the artifact, so a crash
//!    between the two leaves a servable artifact and a cache that merely
//!    redoes one window's work on resume;
//! 4. push the epoch into `quasar-serve` via the validated atomic reload:
//!    a rejection is recorded and the old model keeps serving — the
//!    pipeline never stops because one epoch failed validation.
//!
//! ## Riding out a serve outage
//!
//! A *transport* failure on the swap no longer kills the run either: the
//! pipeline trips a circuit breaker, keeps ingesting, training, and
//! persisting epochs locally, and probes the server once per window with
//! a single cheap connection attempt (no retry storm against a dead
//! port). The artifact at `model_out` always holds the **newest** epoch,
//! so recovery is one catch-up swap of that file — the served model after
//! the outage is byte-identical to what an uninterrupted run would serve,
//! because it is literally the same artifact. Outages and catch-ups are
//! counted in the status report (`serve_outages`, `catch_up_swaps`).
//!
//! Source-side transient I/O faults (EINTR, timeouts) are likewise
//! retried in follow mode with backoff up to `max_retries`, counted as
//! `ingest_retries`; a file that shrinks under the tail is reported as
//! truncation/rotation instead of being misread.
//!
//! Failpoints (testkit builds): `stream.ingest` faults the reader,
//! `stream.window` faults window processing, `stream.reload` forces the
//! swap down the rejection path.

use crate::client::{ServeClient, SwapOutcome};
use crate::delta::PathState;
use crate::ingest::{TailDecoder, UpdateWindow, Windower};
use crate::StreamError;
use quasar_core::incremental::{self, IncrementalTrainer, TrainMode};
use quasar_core::persist;
use quasar_core::refine::RefineConfig;
use quasar_serve::metrics::{StreamStatusReport, StreamWindowReport};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Read;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Streaming pipeline knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The MRT update source (BGP4MP updates, optionally preceded by a
    /// PEER_INDEX_TABLE and a RIB dump for the starting state).
    pub updates: PathBuf,
    /// Where each epoch artifact is written (atomically replaced per
    /// window; the path handed to the server's `reload`).
    pub model_out: PathBuf,
    /// Trainer-cache directory for crash-safe resume. `None` keeps the
    /// cache in memory only.
    pub state_dir: Option<PathBuf>,
    /// `host:port` of a running `quasar-serve` to push epochs into.
    /// `None` trains and persists without serving.
    pub serve_addr: Option<String>,
    /// Window span in **record time** seconds (windowing is a pure
    /// function of the update stream, never of wall-clock arrival).
    pub window_secs: u32,
    /// Hard cap on BGP4MP updates per window.
    pub max_window_updates: usize,
    /// Keep tailing the file for appended records after EOF.
    pub follow: bool,
    /// Follow mode: how often to poll for appended bytes (ms).
    pub poll_ms: u64,
    /// Follow mode: end the stream after this long with no new bytes (ms).
    pub idle_timeout_ms: u64,
    /// Worker threads for refinement (`0` = all cores). The trained model
    /// is byte-identical regardless.
    pub threads: usize,
    /// Retry budget for transient faults: transport retries per serve
    /// exchange, transient-read retries on the ingest tail, and catch-up
    /// swap attempts after the source ends during an outage. `0` fails
    /// fast everywhere.
    pub max_retries: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            updates: PathBuf::from("updates.mrt"),
            model_out: PathBuf::from("stream-model.quasar"),
            state_dir: None,
            serve_addr: None,
            window_secs: 1,
            max_window_updates: 10_000,
            follow: false,
            poll_ms: 50,
            idle_timeout_ms: 2_000,
            threads: 0,
            max_retries: 3,
        }
    }
}

/// The final report of one [`Pipeline::run_file`] replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamRunReport {
    /// Every processed window, in order.
    pub windows: Vec<StreamWindowReport>,
    /// The cumulative status (what `stream_report` last pushed).
    pub status: StreamStatusReport,
    /// Why the source ended early, if it did (truncated tail, undecodable
    /// frame, injected ingest fault). Windows processed before the fault
    /// are all in `windows` — the pipeline degrades, it does not discard.
    pub source_error: Option<String>,
}

/// What the ingest thread hands the trainer.
enum Feed {
    Window(UpdateWindow),
    Fault(String),
    /// A transient read fault was retried (counted, not fatal).
    Retried,
}

/// The streaming pipeline (delta state + incremental trainer + swap
/// client), usable window-by-window or over a whole file.
pub struct Pipeline {
    cfg: StreamConfig,
    refine_cfg: RefineConfig,
    state: PathState,
    trainer: IncrementalTrainer,
    client: Option<ServeClient>,
    status: StreamStatusReport,
    window_reports: Vec<StreamWindowReport>,
    /// Swap generation reported by the server on the last accepted
    /// reload (0 until the first swap). Against a sharded server this is
    /// the fleet-wide generation of the coordinated swap.
    last_generation: u64,
    /// Circuit breaker: true while the server is unreachable and the
    /// newest persisted epoch has not been swapped in. While set, the
    /// pipeline probes with one cheap connection per window instead of
    /// the full retry schedule, and skips status pushes.
    swap_pending: bool,
}

fn mode_str(mode: &TrainMode) -> &'static str {
    match mode {
        TrainMode::Initial => "initial",
        TrainMode::FullRetrain { .. } => "full_retrain",
        TrainMode::Incremental {
            repair_replayed: true,
        } => "incremental_replay",
        TrainMode::Incremental {
            repair_replayed: false,
        } => "incremental",
    }
}

impl Pipeline {
    /// Builds a pipeline, resuming the trainer cache from
    /// `cfg.state_dir` when one is there (a missing cache is a fresh
    /// start, not an error — a corrupt one is surfaced).
    pub fn new(cfg: StreamConfig) -> Result<Self, StreamError> {
        let refine_cfg = RefineConfig {
            threads: cfg.threads,
            ..RefineConfig::default()
        };
        let trainer = match &cfg.state_dir {
            Some(dir) => incremental::load_or_new(dir, &refine_cfg)?,
            None => IncrementalTrainer::new(),
        };
        let client = cfg.serve_addr.clone().map(|addr| {
            // The seed only decorrelates retry jitter across pipelines;
            // the process id is plenty and keeps one-process tests
            // deterministic.
            ServeClient::new(addr).with_retries(cfg.max_retries, u64::from(std::process::id()))
        });
        Ok(Pipeline {
            cfg,
            refine_cfg,
            state: PathState::new(),
            trainer,
            client,
            status: StreamStatusReport::default(),
            window_reports: Vec::new(),
            last_generation: 0,
            swap_pending: false,
        })
    }

    /// The cumulative status so far.
    pub fn status(&self) -> &StreamStatusReport {
        &self.status
    }

    /// The server's swap generation after the last accepted reload
    /// (0 before the first swap).
    pub fn generation(&self) -> u64 {
        self.last_generation
    }

    /// The live observed-path state.
    pub fn state(&self) -> &PathState {
        &self.state
    }

    /// Trainer epochs completed (0 before the first training run).
    pub fn epoch(&self) -> u64 {
        self.trainer.epoch()
    }

    /// Processes one window end-to-end: apply deltas, retrain if anything
    /// dirtied, persist the epoch, swap it into the server.
    pub fn process_window(
        &mut self,
        window: &UpdateWindow,
    ) -> Result<StreamWindowReport, StreamError> {
        let started = Instant::now();
        // Failpoint: fault window processing before any state mutates, so
        // a resume replays the window cleanly.
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("stream.window") {
            return Err(StreamError::Io(std::io::Error::other(
                "injected fault (failpoint stream.window)",
            )));
        }
        let applied = self.state.apply(&window.records);
        let mut refine_ms = 0u64;
        let mut swap_ms = 0u64;
        let mut freshly_persisted = false;
        let mode: String = if applied.dirty.is_empty() && self.trainer.has_cache() {
            // Nothing the model depends on changed: the dataset is
            // literally identical to the one the cache was trained on.
            "no_change".into()
        } else {
            let dataset = self.state.dataset();
            let t0 = Instant::now();
            let (mut model, report) = self.trainer.train(&dataset, &self.refine_cfg)?;
            refine_ms = t0.elapsed().as_millis() as u64;
            // Mirror `quasar train` exactly so a streamed epoch is
            // byte-identical to an offline retrain of the same path set.
            model.generalize_med_preferences();
            let json = model
                .to_json()
                .map_err(|e| StreamError::Encode(e.to_string()))?;
            persist::save_artifact(&self.cfg.model_out, persist::KIND_MODEL, json.as_bytes())?;
            // Artifact first, cache second: a crash between the two
            // leaves a servable epoch plus a cache that merely redoes
            // this window on resume.
            if let Some(dir) = &self.cfg.state_dir {
                self.trainer.save(dir)?;
            }
            freshly_persisted = true;
            mode_str(&report.mode).into()
        };
        // Swap on a fresh epoch, or probe for catch-up while the breaker
        // is open — even an all-clean window is a chance to recover.
        if self.client.is_some() && (freshly_persisted || self.swap_pending) {
            let t1 = Instant::now();
            self.attempt_swap(window.seq);
            if freshly_persisted {
                swap_ms = t1.elapsed().as_millis().max(1) as u64;
            }
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        let report = StreamWindowReport {
            seq: window.seq,
            updates: applied.updates,
            announcements: applied.announcements,
            withdrawals: applied.withdrawals,
            dirty_prefixes: applied.dirty.len() as u64,
            mode: mode.clone(),
            refine_ms,
            swap_ms,
            updates_per_sec: applied.updates as f64 / elapsed,
        };
        self.status.windows += 1;
        self.status.updates_total += applied.updates;
        self.status.dirty_prefixes_total += report.dirty_prefixes;
        match mode.as_str() {
            "incremental" | "incremental_replay" => self.status.incremental_windows += 1,
            "initial" | "full_retrain" => self.status.full_retrain_windows += 1,
            _ => {}
        }
        self.status.last_window = Some(report.clone());
        self.publish_status();
        self.window_reports.push(report.clone());
        Ok(report)
    }

    /// One attempt to swap the newest persisted artifact into the server.
    ///
    /// A transport failure trips (or keeps open) the circuit breaker:
    /// `swap_pending` stays set, the outage is counted once per
    /// closed→open transition, and the pipeline carries on training. A
    /// swap that lands while the breaker was open is a catch-up swap —
    /// the served model jumps straight to the newest epoch, which is
    /// exactly what an uninterrupted run would be serving.
    fn attempt_swap(&mut self, seq: u64) {
        let Some(client) = &self.client else { return };
        #[cfg(feature = "testkit")]
        let injected_rejection = quasar_bgpsim::fail::inject("stream.reload");
        #[cfg(not(feature = "testkit"))]
        let injected_rejection = false;
        let outcome = if injected_rejection {
            Ok(SwapOutcome::Rejected(
                "injected rejection (failpoint stream.reload)".into(),
            ))
        } else if self.swap_pending {
            // Half-open probe: one connection attempt, no retry schedule
            // — a dead server fails this in microseconds.
            ServeClient::new(client.addr()).reload(&self.cfg.model_out)
        } else {
            client.reload(&self.cfg.model_out)
        };
        match outcome {
            Ok(SwapOutcome::Swapped(r)) => {
                self.status.swaps += 1;
                self.last_generation = r.generation;
                if self.swap_pending {
                    self.status.catch_up_swaps += 1;
                    self.swap_pending = false;
                    eprintln!(
                        "window {seq}: server back, caught up to generation {}",
                        r.generation
                    );
                }
            }
            Ok(SwapOutcome::Rejected(msg)) => {
                // The server saw the artifact and refused it; retrying
                // the same bytes cannot succeed, so the breaker closes.
                self.status.swaps_rejected += 1;
                self.swap_pending = false;
                eprintln!("window {seq}: epoch rejected, previous model keeps serving: {msg}");
            }
            Err(e) => {
                if !self.swap_pending {
                    self.status.serve_outages += 1;
                    eprintln!("window {seq}: server unreachable, training continues locally: {e}");
                }
                self.swap_pending = true;
            }
        }
    }

    /// After the source ends with the breaker still open: a bounded
    /// backoff loop trying to land the final catch-up swap, so a short
    /// outage straddling end-of-stream still converges. Returns whether
    /// the newest epoch is serving.
    fn catch_up(&mut self) -> bool {
        let mut backoff = quasar_core::backoff::Backoff::new(
            50,
            2_000,
            u64::from(std::process::id()).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        while self.swap_pending && backoff.attempt() < self.cfg.max_retries {
            std::thread::sleep(backoff.next_delay());
            self.attempt_swap(self.status.windows);
        }
        !self.swap_pending
    }

    /// Pushes the cumulative status to the server, best-effort: progress
    /// reporting must never take the pipeline down (and while the breaker
    /// is open there is no point knocking twice per window).
    fn publish_status(&self) {
        if self.swap_pending {
            return;
        }
        if let Some(client) = &self.client {
            if let Err(e) = client.report(&self.status) {
                eprintln!("cannot publish stream report: {e}");
            }
        }
    }

    /// Replays (or in follow mode, tails) `cfg.updates` to completion.
    ///
    /// Source-side trouble — a truncated tail, an undecodable frame, an
    /// injected ingest fault — ends the stream *gracefully*: every window
    /// completed before the fault is processed and reported, and the
    /// cause lands in [`StreamRunReport::source_error`]. Only
    /// trainer/persist/transport failures abort with an error.
    pub fn run_file(&mut self) -> Result<StreamRunReport, StreamError> {
        let (tx, rx) = mpsc::sync_channel::<Feed>(2);
        let cfg = self.cfg.clone();
        let mut source_error: Option<String> = None;
        let mut process_error: Option<StreamError> = None;
        std::thread::scope(|s| {
            s.spawn(move || ingest_source(&cfg, tx));
            for feed in rx {
                match feed {
                    Feed::Window(w) => {
                        if let Err(e) = self.process_window(&w) {
                            process_error = Some(e);
                            // Dropping the receiver (via break) unblocks a
                            // sender stalled on the bounded channel.
                            break;
                        }
                    }
                    Feed::Fault(msg) => {
                        eprintln!("update source ended: {msg}");
                        source_error = Some(msg);
                    }
                    Feed::Retried => self.status.ingest_retries += 1,
                }
            }
        });
        if let Some(e) = process_error {
            return Err(e);
        }
        // The breaker may still be open at end-of-stream (outage longer
        // than the tail); give the final catch-up swap a bounded chance.
        if self.swap_pending && !self.catch_up() {
            eprintln!(
                "server still unreachable after the source ended; newest epoch is persisted at {}",
                self.cfg.model_out.display()
            );
        }
        self.status.source_done = true;
        self.publish_status();
        Ok(StreamRunReport {
            windows: self.window_reports.clone(),
            status: self.status.clone(),
            source_error,
        })
    }
}

/// The ingest thread: read → decode → window → send. All sends are
/// best-effort; a dropped receiver means the trainer side ended first and
/// the reader just exits.
///
/// Fault handling classifies before reacting: a transient read fault
/// (EINTR, a timeout) in follow mode is retried with backoff up to
/// `cfg.max_retries` consecutive times and merely counted; a file that
/// *shrinks* under the tail was truncated or rotated and is reported as
/// such (re-reading from a stale offset would misframe every record);
/// everything else is a permanent source fault ending the stream
/// gracefully.
fn ingest_source(cfg: &StreamConfig, tx: mpsc::SyncSender<Feed>) {
    let mut file = match File::open(&cfg.updates) {
        Ok(f) => f,
        Err(e) => {
            let _ = tx.send(Feed::Fault(format!(
                "cannot open {}: {e}",
                cfg.updates.display()
            )));
            return;
        }
    };
    let mut decoder = TailDecoder::new();
    let mut windower = Windower::new(cfg.window_secs, cfg.max_window_updates);
    let poll = Duration::from_millis(cfg.poll_ms.max(1));
    let idle_limit = Duration::from_millis(cfg.idle_timeout_ms);
    let mut idle = Duration::ZERO;
    let mut buf = [0u8; 8192];
    // Bytes successfully read so far: the yardstick for detecting a file
    // that shrank (truncation or rotation-in-place) under a follow tail.
    let mut read_off: u64 = 0;
    let mut retry = quasar_core::backoff::Backoff::new(
        cfg.poll_ms.max(1),
        cfg.idle_timeout_ms.max(1),
        read_off ^ 0x696e_6765_7374_2121,
    );
    loop {
        #[cfg(feature = "testkit")]
        if quasar_bgpsim::fail::inject("stream.ingest") {
            let _ = tx.send(Feed::Fault(
                "injected fault (failpoint stream.ingest)".into(),
            ));
            return;
        }
        match file.read(&mut buf) {
            Ok(0) => {
                // EOF *now*; in follow mode the file may still grow — or
                // shrink, which means our offset no longer frames records.
                if cfg.follow {
                    if let Ok(meta) = std::fs::metadata(&cfg.updates) {
                        if meta.len() < read_off {
                            let _ = tx.send(Feed::Fault(format!(
                                "{} truncated or rotated under the tail ({} bytes read, file now {})",
                                cfg.updates.display(),
                                read_off,
                                meta.len()
                            )));
                            return;
                        }
                    }
                }
                if !cfg.follow || idle >= idle_limit {
                    break;
                }
                std::thread::sleep(poll);
                idle += poll;
            }
            Ok(n) => {
                idle = Duration::ZERO;
                retry.reset();
                read_off += n as u64;
                decoder.push(&buf[..n]);
                loop {
                    match decoder.next_record() {
                        Ok(Some(record)) => {
                            if let Some(w) = windower.push(record) {
                                if tx.send(Feed::Window(w)).is_err() {
                                    return;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            let _ = tx.send(Feed::Fault(format!("undecodable MRT frame: {e}")));
                            return;
                        }
                    }
                }
            }
            Err(e)
                if cfg.follow
                    && crate::ingest::is_transient_io(&e)
                    && retry.attempt() < cfg.max_retries =>
            {
                if tx.send(Feed::Retried).is_err() {
                    return;
                }
                std::thread::sleep(retry.next_delay());
            }
            Err(e) => {
                let _ = tx.send(Feed::Fault(format!(
                    "cannot read {}: {e}",
                    cfg.updates.display()
                )));
                return;
            }
        }
    }
    // Complete records before a truncated tail still form valid windows.
    if let Some(w) = windower.flush() {
        let _ = tx.send(Feed::Window(w));
    }
    if decoder.pending() > 0 {
        let _ = tx.send(Feed::Fault(format!(
            "source truncated mid-record ({} bytes dangling)",
            decoder.pending()
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_core::model::AsRoutingModel;
    use quasar_core::refine::refine;
    use quasar_mrt::prelude::*;
    use quasar_netgen::prelude::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("quasar-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_archive(path: &PathBuf, records: &[MrtRecord]) {
        let mut w = MrtWriter::new(Vec::new());
        for r in records {
            w.write_record(r).unwrap();
        }
        std::fs::write(path, w.finish().unwrap()).unwrap();
    }

    #[test]
    fn replaying_an_archive_trains_and_persists_epochs() {
        let dir = temp_dir("replay");
        let net = SyntheticInternet::generate(NetGenConfig::tiny(51));
        let cfg = UpdateStreamConfig {
            flap_fraction: 0.3,
            withdraw_fraction: 0.5,
            ..UpdateStreamConfig::default()
        };
        let records = generate_update_stream(&net.observation_points, &net.observations, &cfg, 3);
        let updates = dir.join("updates.mrt");
        write_archive(&updates, &records);

        let model_out = dir.join("model.quasar");
        let mut pipeline = Pipeline::new(StreamConfig {
            updates,
            model_out: model_out.clone(),
            window_secs: 3_600,
            threads: 1,
            ..StreamConfig::default()
        })
        .unwrap();
        let report = pipeline.run_file().unwrap();

        assert!(report.source_error.is_none(), "{report:?}");
        assert!(report.status.windows >= 2, "dump + update windows");
        assert_eq!(report.windows[0].mode, "initial");
        assert_eq!(report.status.swaps, 0, "no server attached");
        assert!(report.status.source_done);

        // The final artifact must be byte-identical to an offline retrain
        // of the final path set — the streamed epoch and `quasar train`
        // are interchangeable files.
        let streamed = std::fs::read(&model_out).unwrap();
        let dataset = pipeline.state().dataset();
        let rc = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
        refine(&mut model, &dataset, &rc).unwrap();
        model.generalize_med_preferences();
        let offline = model.to_json().unwrap();
        let offline_path = dir.join("offline.quasar");
        persist::save_artifact(&offline_path, persist::KIND_MODEL, offline.as_bytes()).unwrap();
        assert_eq!(streamed, std::fs::read(&offline_path).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_windows_skip_training_entirely() {
        let dir = temp_dir("noop");
        let net = SyntheticInternet::generate(NetGenConfig::tiny(52));
        let cfg = UpdateStreamConfig {
            flap_fraction: 0.0,
            ..UpdateStreamConfig::default()
        };
        let records = generate_update_stream(&net.observation_points, &net.observations, &cfg, 4);
        let mut pipeline = Pipeline::new(StreamConfig {
            updates: dir.join("unused.mrt"),
            model_out: dir.join("model.quasar"),
            threads: 1,
            ..StreamConfig::default()
        })
        .unwrap();

        // Window 1: the whole dump → initial training.
        let first = pipeline
            .process_window(&UpdateWindow {
                seq: 0,
                opened: records[0].timestamp,
                closed: records[records.len() - 1].timestamp,
                records: records.clone(),
            })
            .unwrap();
        assert_eq!(first.mode, "initial");
        assert!(first.refine_ms > 0 || first.dirty_prefixes > 0);

        // Window 2: replay the RIB verbatim — every announcement is a
        // no-op, so nothing is dirty and training is skipped outright.
        let second = pipeline
            .process_window(&UpdateWindow {
                seq: 1,
                opened: 0,
                closed: 0,
                records,
            })
            .unwrap();
        assert_eq!(second.mode, "no_change");
        assert_eq!(second.dirty_prefixes, 0);
        assert_eq!(second.refine_ms, 0);
        assert_eq!(pipeline.status().windows, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_outage_trips_the_breaker_and_training_continues() {
        let dir = temp_dir("outage");
        let net = SyntheticInternet::generate(NetGenConfig::tiny(54));
        let cfg = UpdateStreamConfig::default();
        let records = generate_update_stream(&net.observation_points, &net.observations, &cfg, 3);
        // Nothing listens on this address (bound then dropped).
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let model_out = dir.join("model.quasar");
        let mut pipeline = Pipeline::new(StreamConfig {
            updates: dir.join("unused.mrt"),
            model_out: model_out.clone(),
            serve_addr: Some(dead_addr),
            threads: 1,
            max_retries: 0, // fail fast: the breaker, not the retries
            ..StreamConfig::default()
        })
        .unwrap();
        let mid = records.len() / 2;
        for (seq, chunk) in [&records[..mid], &records[mid..]].iter().enumerate() {
            let report = pipeline
                .process_window(&UpdateWindow {
                    seq: seq as u64,
                    opened: chunk.first().map(|r| r.timestamp).unwrap_or(0),
                    closed: chunk.last().map(|r| r.timestamp).unwrap_or(0),
                    records: chunk.to_vec(),
                })
                .expect("an unreachable server must not kill the window");
            assert_ne!(report.mode, "no_change");
        }
        // One outage (counted at the closed→open transition, not per
        // window), zero swaps, and the newest epoch persisted anyway.
        assert_eq!(pipeline.status().serve_outages, 1);
        assert_eq!(pipeline.status().swaps, 0);
        assert_eq!(pipeline.status().windows, 2);
        assert!(model_out.exists(), "epochs persist through the outage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_lands_a_catch_up_swap() {
        use quasar_serve::protocol::{ReloadReply, Request, Response, StreamReportReply};
        use std::io::{BufRead, BufReader, Write};

        let dir = temp_dir("catchup");
        let net = SyntheticInternet::generate(NetGenConfig::tiny(55));
        let cfg = UpdateStreamConfig {
            // A flap-free stream replays as a no-op, so the second window
            // below is all-clean and exercises the pure-probe path.
            flap_fraction: 0.0,
            ..UpdateStreamConfig::default()
        };
        let records = generate_update_stream(&net.observation_points, &net.observations, &cfg, 3);
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener); // server is "down" for the first window

        let mut pipeline = Pipeline::new(StreamConfig {
            updates: dir.join("unused.mrt"),
            model_out: dir.join("model.quasar"),
            serve_addr: Some(addr.clone()),
            threads: 1,
            max_retries: 0,
            ..StreamConfig::default()
        })
        .unwrap();
        pipeline
            .process_window(&UpdateWindow {
                seq: 0,
                opened: records[0].timestamp,
                closed: records[records.len() - 1].timestamp,
                records: records.clone(),
            })
            .unwrap();
        assert_eq!(pipeline.status().serve_outages, 1);

        // The server comes back on the same address: a minimal fake that
        // answers reloads and reports.
        let listener = std::net::TcpListener::bind(&addr).unwrap();
        // Exactly two exchanges follow: the catch-up reload, then the
        // status publish once the breaker closes.
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut line = String::new();
                if BufReader::new(stream.try_clone().unwrap())
                    .read_line(&mut line)
                    .is_err()
                {
                    continue;
                }
                let reply = match serde_json::from_str::<Request>(line.trim()) {
                    Ok(Request::Reload { .. }) => Response::Reload(ReloadReply {
                        swapped: true,
                        prefixes: 1,
                        quasi_routers: 1,
                        generation: 1,
                    }),
                    Ok(Request::StreamReport { report }) => {
                        Response::StreamReport(StreamReportReply {
                            accepted: true,
                            windows: report.windows,
                        })
                    }
                    _ => return,
                };
                let json = serde_json::to_string(&reply).unwrap();
                let _ = stream.write_all(format!("{json}\n").as_bytes());
            }
        });

        // An all-clean window (same records replayed) is still a recovery
        // probe: the breaker half-opens and the catch-up swap lands.
        let report = pipeline
            .process_window(&UpdateWindow {
                seq: 1,
                opened: 0,
                closed: 0,
                records,
            })
            .unwrap();
        assert_eq!(report.mode, "no_change");
        assert_eq!(pipeline.status().catch_up_swaps, 1);
        assert_eq!(pipeline.status().swaps, 1);
        assert_eq!(pipeline.generation(), 1);
        drop(pipeline);
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_source_degrades_gracefully() {
        let dir = temp_dir("trunc");
        let net = SyntheticInternet::generate(NetGenConfig::tiny(53));
        let cfg = UpdateStreamConfig::default();
        let records = generate_update_stream(&net.observation_points, &net.observations, &cfg, 5);
        let mut w = MrtWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).unwrap();
        }
        let mut bytes = w.finish().unwrap();
        // Chop the archive mid-record.
        let n = bytes.len();
        bytes.truncate(n - 7);
        let updates = dir.join("updates.mrt");
        std::fs::write(&updates, &bytes).unwrap();

        let mut pipeline = Pipeline::new(StreamConfig {
            updates,
            model_out: dir.join("model.quasar"),
            window_secs: 1_000_000, // one big window: all complete records
            threads: 1,
            ..StreamConfig::default()
        })
        .unwrap();
        let report = pipeline.run_file().unwrap();
        let err = report.source_error.expect("truncation reported");
        assert!(err.contains("truncated"), "{err}");
        // Everything before the dangling tail still trained.
        assert!(report.status.windows >= 1);
        assert!(pipeline.epoch() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
