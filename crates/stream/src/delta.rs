//! The delta detector: live observed-path state and exact dirty-prefix
//! extraction.
//!
//! [`PathState`] is the streaming mirror of the collector state machine in
//! `quasar_netgen::updates::reconstruct_stable`: the same peer directory,
//! the same AS-path flattening rules (AS_SET-bearing paths rejected,
//! prepending stripped), the same (feed, prefix) keyed map. The one
//! deliberate difference is that there is no stability window — a live
//! pipeline maintains the *current* path set, and "stable for an hour" is
//! meaningless for a model that refreshes every window.
//!
//! Applying a window yields an [`AppliedWindow`]: per-window counts plus
//! the **exact** set of prefixes whose path set changed. An announcement
//! that re-states the path already held is a no-op and dirties nothing —
//! that rule is what makes incremental refinement cheap on chatty feeds,
//! where most updates are duplicate announcements.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_mrt::attributes::PathAttribute;
use quasar_mrt::bgp4mp::{Bgp4mpMessage, BgpMessage};
use quasar_mrt::record::{MrtBody, MrtRecord};
use quasar_mrt::tabledump2::PeerAddress;
use std::collections::{BTreeMap, BTreeSet};

/// What one window of updates did to the path state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedWindow {
    /// BGP4MP UPDATE messages applied (messages from unknown peers are
    /// counted here too — they parsed, they just matched no feed).
    pub updates: u64,
    /// (feed, prefix) announcements processed, including no-op
    /// re-announcements.
    pub announcements: u64,
    /// (feed, prefix) withdrawals processed, including withdrawals of
    /// routes not currently held.
    pub withdrawals: u64,
    /// Prefixes whose observed path set actually changed.
    pub dirty: BTreeSet<Prefix>,
}

/// The live observed-path set, keyed like the collector keys it.
#[derive(Debug, Clone, Default)]
pub struct PathState {
    /// Feed directory, indexed by point id (the router the collector
    /// peers with, as in the PEER_INDEX_TABLE).
    routers: Vec<RouterId>,
    /// Peer IP (or BGP id for v6 peers) → point index.
    peer_by_ip: BTreeMap<u32, u32>,
    /// (point, prefix) → current AS-path.
    state: BTreeMap<(u32, Prefix), AsPath>,
}

/// Flattens an AS_PATH attribute exactly like `reconstruct_stable`:
/// reject any path carrying a non-SEQUENCE segment (AS_SETs do not give a
/// usable customer chain), then strip prepending.
fn flatten(attrs: &[PathAttribute]) -> Option<AsPath> {
    let segments = attrs.iter().find_map(|a| match a {
        PathAttribute::AsPath(s) => Some(s),
        _ => None,
    })?;
    if segments.iter().any(|s| s.seg_type != 2) {
        return None;
    }
    Some(
        AsPath::new(
            PathAttribute::flatten_as_path(segments)
                .into_iter()
                .map(Asn)
                .collect(),
        )
        .strip_prepending(),
    )
}

impl PathState {
    /// An empty state (no peer directory yet; updates are ignored until a
    /// PEER_INDEX_TABLE arrives, exactly as a collector replay would).
    pub fn new() -> Self {
        PathState::default()
    }

    /// Number of (feed, prefix) routes currently held.
    pub fn route_count(&self) -> usize {
        self.state.len()
    }

    /// True when no routes are held.
    pub fn is_empty(&self) -> bool {
        self.state.is_empty()
    }

    /// Distinct prefixes currently observed.
    pub fn prefix_count(&self) -> usize {
        self.state
            .keys()
            .map(|(_, p)| *p)
            .collect::<BTreeSet<_>>()
            .len()
    }

    fn apply_update(&mut self, m: &Bgp4mpMessage, applied: &mut AppliedWindow) {
        let Some(&point) = self.peer_by_ip.get(&m.peer_ip) else {
            return;
        };
        let BgpMessage::Update(u) = &m.message else {
            return;
        };
        for w in &u.withdrawn {
            applied.withdrawals += 1;
            let prefix = Prefix::new(w.base, w.len);
            if self.state.remove(&(point, prefix)).is_some() {
                applied.dirty.insert(prefix);
            }
        }
        if let Some(path) = flatten(&u.attributes) {
            for a in &u.announced {
                applied.announcements += 1;
                let prefix = Prefix::new(a.base, a.len);
                // An identical re-announcement is a no-op: the path set
                // did not change, so the prefix is not dirty.
                let prev = self.state.insert((point, prefix), path.clone());
                if prev.as_ref() != Some(&path) {
                    applied.dirty.insert(prefix);
                }
            }
        }
    }

    /// Applies one record, accumulating counts and dirty prefixes into
    /// `applied`.
    pub fn apply_record(&mut self, rec: &MrtRecord, applied: &mut AppliedWindow) {
        match &rec.body {
            MrtBody::PeerIndexTable(t) => {
                let routers: Vec<RouterId> = t.peers.iter().map(|p| RouterId(p.bgp_id)).collect();
                let peer_by_ip: BTreeMap<u32, u32> = t
                    .peers
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let ip = match p.address {
                            PeerAddress::V4(ip) => ip,
                            PeerAddress::V6(_) => p.bgp_id,
                        };
                        (ip, i as u32)
                    })
                    .collect();
                // A *changed* directory reshuffles what every held route
                // means; be conservative and dirty everything held. The
                // common case — the table arriving once up front, or
                // re-announced identically — dirties nothing.
                if !self.routers.is_empty()
                    && (self.routers != routers || self.peer_by_ip != peer_by_ip)
                {
                    applied.dirty.extend(self.state.keys().map(|(_, p)| *p));
                    self.state.clear();
                }
                self.routers = routers;
                self.peer_by_ip = peer_by_ip;
            }
            MrtBody::RibIpv4Unicast(rib) => {
                let prefix = Prefix::new(rib.prefix.base, rib.prefix.len);
                for e in &rib.entries {
                    if let Some(path) = flatten(&e.attributes) {
                        let prev = self
                            .state
                            .insert((e.peer_index as u32, prefix), path.clone());
                        if prev.as_ref() != Some(&path) {
                            applied.dirty.insert(prefix);
                        }
                    }
                }
            }
            MrtBody::Bgp4mp(m) => {
                applied.updates += 1;
                self.apply_update(m, applied);
            }
            _ => {}
        }
    }

    /// Applies a whole window of records and returns what changed.
    pub fn apply(&mut self, records: &[MrtRecord]) -> AppliedWindow {
        let mut applied = AppliedWindow::default();
        for rec in records {
            self.apply_record(rec, &mut applied);
        }
        applied
    }

    /// Renders the current path set as a training [`Dataset`] (the same
    /// cleaning `Dataset::new` always applies: prepending stripped, loops
    /// and observer-mismatched heads dropped, sorted, deduplicated).
    pub fn dataset(&self) -> Dataset {
        Dataset::new(self.state.iter().map(|((point, prefix), path)| {
            let observer_as = self
                .routers
                .get(*point as usize)
                .map(|r| r.asn())
                .unwrap_or(Asn::RESERVED);
            ObservedRoute {
                point: *point,
                observer_as,
                prefix: *prefix,
                as_path: path.clone(),
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_mrt::prelude::*;
    use quasar_netgen::prelude::*;

    fn announce(peer_ip: u32, prefix: (u32, u8), path: &[u32], ts: u32) -> MrtRecord {
        MrtRecord {
            timestamp: ts,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: path.first().copied().unwrap_or(0),
                local_asn: 65_000,
                interface: 0,
                peer_ip,
                local_ip: 1,
                as4: true,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![],
                    attributes: vec![
                        PathAttribute::Origin(0),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(path.to_vec())]),
                    ],
                    announced: vec![NlriPrefix::new(prefix.0, prefix.1).unwrap()],
                }),
            }),
        }
    }

    fn withdraw(peer_ip: u32, prefix: (u32, u8), ts: u32) -> MrtRecord {
        MrtRecord {
            timestamp: ts,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 0,
                local_asn: 65_000,
                interface: 0,
                peer_ip,
                local_ip: 1,
                as4: true,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![NlriPrefix::new(prefix.0, prefix.1).unwrap()],
                    attributes: vec![],
                    announced: vec![],
                }),
            }),
        }
    }

    fn peer_table(bgp_ids: &[u32]) -> MrtRecord {
        MrtRecord {
            timestamp: 0,
            body: MrtBody::PeerIndexTable(PeerIndexTable {
                collector_id: 0x7F000001,
                view_name: "test".into(),
                peers: bgp_ids
                    .iter()
                    .map(|&id| PeerEntry {
                        bgp_id: id,
                        address: PeerAddress::V4(id),
                        asn: RouterId(id).asn().0,
                        as4: true,
                    })
                    .collect(),
            }),
        }
    }

    const PFX: (u32, u8) = (0x0A00_0000, 8);

    #[test]
    fn identical_reannouncement_dirties_nothing() {
        let mut st = PathState::new();
        let peer = RouterId::new(quasar_bgpsim::types::Asn(7018), 0).0;
        let path = [7018, 3356, 64_512];
        st.apply(&[peer_table(&[peer]), announce(peer, PFX, &path, 10)]);
        assert_eq!(st.route_count(), 1);

        // Same (feed, prefix, path) again: counted, but not dirty.
        let a = st.apply(&[announce(peer, PFX, &path, 20)]);
        assert_eq!(a.announcements, 1);
        assert!(a.dirty.is_empty(), "{:?}", a.dirty);

        // A different path for the same prefix IS dirty.
        let b = st.apply(&[announce(peer, PFX, &[7018, 1239, 64_512], 30)]);
        assert_eq!(b.dirty.len(), 1);
    }

    #[test]
    fn withdrawal_dirties_only_held_routes() {
        let mut st = PathState::new();
        let peer = RouterId::new(quasar_bgpsim::types::Asn(7018), 0).0;
        st.apply(&[peer_table(&[peer])]);

        // Withdrawing a route we never held: counted, not dirty.
        let a = st.apply(&[withdraw(peer, PFX, 5)]);
        assert_eq!(a.withdrawals, 1);
        assert!(a.dirty.is_empty());

        st.apply(&[announce(peer, PFX, &[7018, 3356], 10)]);
        let b = st.apply(&[withdraw(peer, PFX, 20)]);
        assert_eq!(b.dirty.len(), 1);
        assert!(st.is_empty());
    }

    #[test]
    fn unknown_peers_and_as_set_paths_are_skipped() {
        let mut st = PathState::new();
        let peer = RouterId::new(quasar_bgpsim::types::Asn(7018), 0).0;
        st.apply(&[peer_table(&[peer])]);

        // Unknown peer IP: the update parses but matches no feed.
        let a = st.apply(&[announce(peer + 1, PFX, &[7018, 3356], 10)]);
        assert_eq!((a.updates, a.announcements), (1, 0));
        assert!(st.is_empty());

        // AS_SET-bearing path: rejected, exactly like reconstruct_stable.
        let mut rec = announce(peer, PFX, &[7018, 3356], 11);
        if let MrtBody::Bgp4mp(m) = &mut rec.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attributes = vec![PathAttribute::AsPath(vec![
                    AsPathSegment::sequence(vec![7018]),
                    AsPathSegment {
                        seg_type: 1,
                        asns: vec![3356, 1239],
                    },
                ])];
            }
        }
        let b = st.apply(&[rec]);
        assert!(b.dirty.is_empty());
        assert!(st.is_empty());
    }

    #[test]
    fn replaying_a_full_archive_matches_reconstruct_stable() {
        // With a zero stability window, reconstruct_stable keeps every
        // route present at the snapshot instant — exactly the live state
        // PathState maintains.
        let net = SyntheticInternet::generate(NetGenConfig::tiny(41));
        let cfg = UpdateStreamConfig {
            flap_fraction: 0.4,
            withdraw_fraction: 0.5,
            ..UpdateStreamConfig::default()
        };
        let recs = generate_update_stream(&net.observation_points, &net.observations, &cfg, 7);

        let mut st = PathState::new();
        let at_snapshot: Vec<MrtRecord> = recs
            .iter()
            .filter(|r| r.timestamp <= cfg.snapshot_time)
            .cloned()
            .collect();
        st.apply(&at_snapshot);

        let (points, obs) = reconstruct_stable(&recs, cfg.snapshot_time, 0);
        assert_eq!(points.len(), net.observation_points.len());
        let expected = Dataset::new(obs.into_iter().map(|o| ObservedRoute {
            point: o.point,
            observer_as: o.observer_as,
            prefix: o.prefix,
            as_path: o.as_path,
        }));
        assert_eq!(st.dataset().routes(), expected.routes());
        assert_eq!(st.dataset().len(), expected.len());
        assert!(!expected.routes().is_empty());
    }

    #[test]
    fn changed_peer_table_dirties_everything_held() {
        let mut st = PathState::new();
        let peer = RouterId::new(quasar_bgpsim::types::Asn(7018), 0).0;
        st.apply(&[peer_table(&[peer]), announce(peer, PFX, &[7018, 3356], 10)]);

        // Identical table again: nothing dirties.
        let a = st.apply(&[peer_table(&[peer])]);
        assert!(a.dirty.is_empty());
        assert_eq!(st.route_count(), 1);

        // A different directory invalidates every held route.
        let other = RouterId::new(quasar_bgpsim::types::Asn(1239), 0).0;
        let b = st.apply(&[peer_table(&[other])]);
        assert_eq!(b.dirty.len(), 1);
        assert!(st.is_empty());
    }
}
