//! Frame-at-a-time MRT decoding and bounded update windows.
//!
//! A live feed (or a file being appended to) arrives as a byte stream
//! with no record alignment guarantees: a read may end mid-header or
//! mid-body. [`TailDecoder`] buffers raw bytes and only decodes once a
//! complete frame (12-byte common header + declared body length) is
//! buffered, so a partial tail is "not yet", never "corrupt".
//!
//! [`Windower`] batches decoded records into [`UpdateWindow`]s bounded by
//! **record time** and **count**. Boundaries depend only on the record
//! sequence — never on wall-clock arrival — so replaying the same file
//! always yields the same windows, which is what makes the
//! incremental-vs-full differential tests meaningful.

use quasar_mrt::error::MrtError;
use quasar_mrt::record::{MrtBody, MrtRecord};
use std::io;

/// Whether a read error is worth retrying: the kernel interrupting or
/// timing out a read says nothing about the file, while anything else
/// (permissions yanked, device gone, unexpected EOF semantics) is a
/// permanent source fault the pipeline should report, not mask.
pub fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One batch of consecutive MRT records, closed by time span, count, or
/// end of source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateWindow {
    /// 0-based window sequence number.
    pub seq: u64,
    /// The records, in stream order.
    pub records: Vec<MrtRecord>,
    /// Timestamp of the first record.
    pub opened: u32,
    /// Timestamp of the last record.
    pub closed: u32,
}

impl UpdateWindow {
    /// BGP4MP UPDATE messages in the window (the windowing count bound
    /// and the throughput metrics count these, not RIB/peer records).
    pub fn update_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.body, MrtBody::Bgp4mp(_)))
            .count()
    }
}

/// Incremental MRT frame decoder for a byte stream that grows over time.
///
/// Push raw bytes with [`push`](Self::push); pop complete records with
/// [`next_record`](Self::next_record). `Ok(None)` means "need more
/// bytes", not end-of-stream — the caller decides when the source is
/// exhausted.
#[derive(Debug, Default)]
pub struct TailDecoder {
    buf: Vec<u8>,
    /// Bytes at the front of `buf` already decoded and logically consumed.
    consumed: usize,
}

/// Compact the buffer once this many consumed bytes accumulate, so a
/// long-running tail does not grow without bound.
const COMPACT_THRESHOLD: usize = 1 << 16;

impl TailDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        TailDecoder::default()
    }

    /// Appends newly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a nonzero value at source end
    /// means the file was truncated mid-record).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Decodes the next record if a complete frame is buffered.
    ///
    /// `Ok(None)` = incomplete frame, push more bytes. A decode failure
    /// on a *complete* frame is real corruption and comes back as the
    /// typed [`MrtError`].
    pub fn next_record(&mut self) -> Result<Option<MrtRecord>, MrtError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 12 {
            return Ok(None);
        }
        let body_len = u32::from_be_bytes([avail[8], avail[9], avail[10], avail[11]]) as usize;
        let frame_len = 12 + body_len;
        if avail.len() < frame_len {
            return Ok(None);
        }
        let mut frame = bytes::Bytes::copy_from_slice(&avail[..frame_len]);
        let record = MrtRecord::decode(&mut frame)?;
        self.consumed += frame_len;
        if self.consumed >= COMPACT_THRESHOLD {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(record))
    }

    /// Drains every complete record currently buffered.
    pub fn drain_records(&mut self) -> Result<Vec<MrtRecord>, MrtError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Batches records into bounded windows keyed by record time.
///
/// A window spans at most `window_secs` of record time and at most
/// `max_updates` BGP4MP updates; the record that would exceed either
/// bound closes the current window and opens the next. Non-update
/// records (peer tables, RIB entries) ride in whatever window is open
/// and never trigger a close on count.
#[derive(Debug)]
pub struct Windower {
    window_secs: u32,
    max_updates: usize,
    current: Vec<MrtRecord>,
    open_ts: u32,
    updates_in_current: usize,
    next_seq: u64,
}

impl Windower {
    /// A windower with the given bounds (both clamped to at least 1).
    pub fn new(window_secs: u32, max_updates: usize) -> Self {
        Windower {
            window_secs: window_secs.max(1),
            max_updates: max_updates.max(1),
            current: Vec::new(),
            open_ts: 0,
            updates_in_current: 0,
            next_seq: 0,
        }
    }

    fn emit(&mut self) -> Option<UpdateWindow> {
        if self.current.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut self.current);
        let window = UpdateWindow {
            seq: self.next_seq,
            opened: records.first().map(|r| r.timestamp).unwrap_or(0),
            closed: records.last().map(|r| r.timestamp).unwrap_or(0),
            records,
        };
        self.next_seq += 1;
        self.updates_in_current = 0;
        Some(window)
    }

    /// Adds one record; returns the window it *closed*, if any (the
    /// record itself starts the next window).
    pub fn push(&mut self, record: MrtRecord) -> Option<UpdateWindow> {
        let is_update = matches!(record.body, MrtBody::Bgp4mp(_));
        let closes = !self.current.is_empty()
            && (record.timestamp >= self.open_ts.saturating_add(self.window_secs)
                || (is_update && self.updates_in_current >= self.max_updates));
        let emitted = if closes { self.emit() } else { None };
        if self.current.is_empty() {
            self.open_ts = record.timestamp;
        }
        if is_update {
            self.updates_in_current += 1;
        }
        self.current.push(record);
        emitted
    }

    /// Closes and returns the in-progress window (source exhausted, or a
    /// follow-mode tail went idle).
    pub fn flush(&mut self) -> Option<UpdateWindow> {
        self.emit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_mrt::prelude::*;

    fn update_at(ts: u32, peer_ip: u32) -> MrtRecord {
        MrtRecord {
            timestamp: ts,
            body: MrtBody::Bgp4mp(Bgp4mpMessage {
                peer_asn: 7018,
                local_asn: 65_000,
                interface: 0,
                peer_ip,
                local_ip: 1,
                as4: true,
                message: BgpMessage::Update(BgpUpdate {
                    withdrawn: vec![],
                    attributes: vec![
                        PathAttribute::Origin(0),
                        PathAttribute::AsPath(vec![AsPathSegment::sequence(vec![7018, 3356])]),
                    ],
                    announced: vec![NlriPrefix::new(0x0A00_0000, 8).unwrap()],
                }),
            }),
        }
    }

    fn rib_at(ts: u32) -> MrtRecord {
        MrtRecord {
            timestamp: ts,
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: 0,
                prefix: NlriPrefix::new(0x0A00_0000, 8).unwrap(),
                entries: vec![],
            }),
        }
    }

    #[test]
    fn tail_decoder_handles_arbitrary_byte_splits() {
        let records: Vec<MrtRecord> = (0..5).map(|i| update_at(100 + i, i)).collect();
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(&r.encode());
        }
        // Feed the stream one byte at a time: every prefix of a frame is
        // "need more", and each completed frame pops exactly once.
        let mut dec = TailDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.push(&[*b]);
            while let Some(r) = dec.next_record().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, records);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn tail_decoder_reports_corruption_of_complete_frames() {
        let mut bytes = update_at(1, 2).encode().to_vec();
        // Corrupt a byte inside the BGP message body (past the marker)
        // without touching the MRT length field: the frame is complete
        // but undecodable.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let mut dec = TailDecoder::new();
        dec.push(&bytes);
        // Either a typed error or a decode to a different record is
        // acceptable for arbitrary corruption; flipping the last NLRI
        // byte keeps framing lengths intact, so here it must decode —
        // the point is it must not hang waiting for more bytes.
        let r = dec.next_record();
        assert!(matches!(r, Ok(Some(_)) | Err(_)), "{r:?}");
    }

    #[test]
    fn tail_decoder_compacts_without_losing_records() {
        let records: Vec<MrtRecord> = (0..2_000).map(|i| update_at(i, i % 7)).collect();
        let mut dec = TailDecoder::new();
        let mut got = 0usize;
        for r in &records {
            dec.push(&r.encode());
            got += dec.drain_records().unwrap().len();
        }
        assert_eq!(got, records.len());
        assert!(dec.buf.len() < COMPACT_THRESHOLD + 1024, "buffer compacted");
    }

    #[test]
    fn transient_faults_are_distinguished_from_permanent_ones() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_transient_io(&io::Error::from(kind)), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
        ] {
            assert!(!is_transient_io(&io::Error::from(kind)), "{kind:?}");
        }
    }

    #[test]
    fn windows_close_on_time_span() {
        let mut w = Windower::new(10, 1_000);
        assert!(w.push(update_at(100, 1)).is_none());
        assert!(w.push(update_at(105, 1)).is_none());
        let first = w.push(update_at(110, 1)).expect("span exceeded");
        assert_eq!(first.seq, 0);
        assert_eq!(first.records.len(), 2);
        assert_eq!((first.opened, first.closed), (100, 105));
        let last = w.flush().expect("in-progress window");
        assert_eq!(last.seq, 1);
        assert_eq!(last.records.len(), 1);
        assert!(w.flush().is_none());
    }

    #[test]
    fn windows_close_on_update_count_but_not_on_rib_records() {
        let mut w = Windower::new(1_000_000, 2);
        assert!(w.push(rib_at(1)).is_none());
        assert!(w.push(update_at(1, 1)).is_none());
        assert!(w.push(update_at(2, 2)).is_none());
        // RIB records never close a window on count...
        assert!(w.push(rib_at(3)).is_none());
        // ...but the third update does.
        let win = w.push(update_at(4, 3)).expect("count exceeded");
        assert_eq!(win.records.len(), 4);
        assert_eq!(win.update_count(), 2);
    }

    #[test]
    fn windowing_is_deterministic_in_record_time() {
        let records: Vec<MrtRecord> = (0..100).map(|i| update_at(i * 3, i)).collect();
        let run = |records: &[MrtRecord]| -> Vec<(u64, usize)> {
            let mut w = Windower::new(7, 1_000);
            let mut out: Vec<(u64, usize)> = records
                .iter()
                .filter_map(|r| w.push(r.clone()))
                .map(|win| (win.seq, win.records.len()))
                .collect();
            if let Some(win) = w.flush() {
                out.push((win.seq, win.records.len()));
            }
            out
        };
        assert_eq!(run(&records), run(&records));
    }
}
