//! One-shot client for the `quasar-serve` control plane.
//!
//! The pipeline talks to the server twice per window at most: a `reload`
//! to swap the freshly persisted epoch in, and a `stream_report` to
//! publish cumulative progress. Both are one connection, one request
//! line, one reply line — a streaming pipeline has no business holding a
//! long-lived connection open across refinement runs that may take
//! seconds, and a fresh connect per window means a server restart between
//! windows heals itself.
//!
//! The crucial distinction lives in [`SwapOutcome`]: a reload *rejection*
//! (the server validated the artifact and kept the old model) is a normal
//! outcome the pipeline records and continues past, while a *transport*
//! failure is a [`StreamError`] for the caller to handle.

use crate::StreamError;
use quasar_serve::metrics::{MetricsSnapshot, StreamStatusReport};
use quasar_serve::protocol::{ReloadReply, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;

/// What a `reload` request did.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapOutcome {
    /// The new epoch is serving.
    Swapped(ReloadReply),
    /// The server validated the artifact, rejected it, and kept the old
    /// model serving (or shed the request under overload).
    Rejected(String),
}

/// A one-shot TCP client for a `quasar-serve` instance.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: String,
}

impl ServeClient {
    /// A client for the server at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        ServeClient { addr: addr.into() }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request, reads one reply, closes the connection.
    fn exchange(&self, request: &Request) -> Result<Response, StreamError> {
        let json = serde_json::to_string(request)
            .map_err(|e| StreamError::Serve(format!("cannot encode request: {e}")))?;
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| StreamError::Serve(format!("cannot connect to {}: {e}", self.addr)))?;
        stream
            .write_all(format!("{json}\n").as_bytes())
            .map_err(|e| StreamError::Serve(format!("cannot send to {}: {e}", self.addr)))?;
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .map_err(|e| StreamError::Serve(format!("cannot read reply: {e}")))?;
        if reply.trim().is_empty() {
            return Err(StreamError::Serve(format!(
                "{} closed the connection without replying",
                self.addr
            )));
        }
        serde_json::from_str(reply.trim())
            .map_err(|e| StreamError::Serve(format!("unparseable reply: {e}")))
    }

    /// Asks the server to hot-swap in the model artifact at `path`.
    ///
    /// The swap is all-or-nothing on the server side; a rejected epoch
    /// comes back as [`SwapOutcome::Rejected`] with the old model still
    /// serving.
    pub fn reload(&self, path: &Path) -> Result<SwapOutcome, StreamError> {
        let request = Request::Reload {
            path: path.display().to_string(),
        };
        match self.exchange(&request)? {
            Response::Reload(r) => Ok(SwapOutcome::Swapped(r)),
            Response::Error(e) => Ok(SwapOutcome::Rejected(e.message)),
            Response::Overloaded(o) => Ok(SwapOutcome::Rejected(format!(
                "server overloaded (retry after {} ms)",
                o.retry_after_ms
            ))),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to reload: {other:?}"
            ))),
        }
    }

    /// Publishes the pipeline's cumulative status; returns whether the
    /// server accepted it (a refusal is not a transport error).
    pub fn report(&self, report: &StreamStatusReport) -> Result<bool, StreamError> {
        let request = Request::StreamReport {
            report: report.clone(),
        };
        match self.exchange(&request)? {
            Response::StreamReport(r) => Ok(r.accepted),
            Response::Error(_) | Response::Overloaded(_) => Ok(false),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to stream_report: {other:?}"
            ))),
        }
    }

    /// Fetches the server's metrics snapshot (which carries the last
    /// accepted stream status — this is what `quasar stream-stats` prints).
    pub fn metrics(&self) -> Result<MetricsSnapshot, StreamError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            Response::Error(e) => Err(StreamError::Serve(format!(
                "metrics request failed: {}",
                e.message
            ))),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to metrics: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_serve::protocol::ErrorReply;
    use std::net::TcpListener;
    use std::thread;

    /// A single-shot fake server: accepts one connection, asserts the
    /// request tag, replies with a canned response.
    fn canned(reply: Response, expect_tag: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut line = String::new();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            reader.read_line(&mut line).unwrap();
            assert!(
                line.contains(&format!("\"type\":\"{expect_tag}\"")),
                "request line: {line}"
            );
            let mut stream = stream;
            let json = serde_json::to_string(&reply).unwrap();
            stream.write_all(format!("{json}\n").as_bytes()).unwrap();
        });
        addr
    }

    #[test]
    fn reload_distinguishes_swap_from_rejection() {
        let reply = ReloadReply {
            swapped: true,
            prefixes: 12,
            quasi_routers: 34,
            generation: 2,
        };
        let addr = canned(Response::Reload(reply), "reload");
        let outcome = ServeClient::new(addr)
            .reload(Path::new("/tmp/model"))
            .unwrap();
        assert_eq!(outcome, SwapOutcome::Swapped(reply));

        let addr = canned(
            Response::Error(ErrorReply {
                message: "reload rejected; keeping current model".into(),
            }),
            "reload",
        );
        let outcome = ServeClient::new(addr)
            .reload(Path::new("/tmp/model"))
            .unwrap();
        assert!(matches!(outcome, SwapOutcome::Rejected(m) if m.contains("rejected")));
    }

    #[test]
    fn transport_failure_is_an_error_not_a_rejection() {
        // Nothing listens on this address (bound then dropped).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = ServeClient::new(addr).reload(Path::new("/tmp/model"));
        assert!(matches!(err, Err(StreamError::Serve(_))), "{err:?}");
    }

    #[test]
    fn report_returns_acceptance() {
        let addr = canned(
            Response::StreamReport(quasar_serve::protocol::StreamReportReply {
                accepted: true,
                windows: 3,
            }),
            "stream_report",
        );
        let status = StreamStatusReport {
            windows: 3,
            ..StreamStatusReport::default()
        };
        assert!(ServeClient::new(addr).report(&status).unwrap());
    }
}
