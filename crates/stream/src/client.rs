//! One-shot client for the `quasar-serve` control plane.
//!
//! The pipeline talks to the server twice per window at most: a `reload`
//! to swap the freshly persisted epoch in, and a `stream_report` to
//! publish cumulative progress. Both are one connection, one request
//! line, one reply line — a streaming pipeline has no business holding a
//! long-lived connection open across refinement runs that may take
//! seconds, and a fresh connect per window means a server restart between
//! windows heals itself.
//!
//! The crucial distinction lives in [`SwapOutcome`]: a reload *rejection*
//! (the server validated the artifact and kept the old model) is a normal
//! outcome the pipeline records and continues past, while a *transport*
//! failure is a [`StreamError`] for the caller to handle.
//!
//! A client built with [`ServeClient::with_retries`] is *resilient*: a
//! transport failure (connection refused, reset mid-exchange) or an
//! `overloaded` reply is retried up to the configured budget with capped
//! jittered exponential backoff ([`quasar_core::backoff::Backoff`]), and
//! an overloaded reply's `retry_after_ms` is honoured as a floor on the
//! next delay. Because every exchange is one fresh connection, "retry"
//! and "reconnect" are the same act — a server restart between attempts
//! heals without any session state to rebuild.

use crate::StreamError;
use quasar_core::backoff::{splitmix64, Backoff};
use quasar_serve::metrics::{MetricsSnapshot, StreamStatusReport};
use quasar_serve::protocol::{HealthReply, ReloadReply, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// First retry delay; doubles per attempt.
const RETRY_BASE_MS: u64 = 50;

/// Cap on the exponential term of the retry schedule.
const RETRY_CAP_MS: u64 = 2_000;

/// What a `reload` request did.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapOutcome {
    /// The new epoch is serving.
    Swapped(ReloadReply),
    /// The server validated the artifact, rejected it, and kept the old
    /// model serving (or shed the request under overload).
    Rejected(String),
}

/// A one-shot TCP client for a `quasar-serve` instance.
#[derive(Debug)]
pub struct ServeClient {
    addr: String,
    /// Transport-level retries per exchange; 0 = fail on first fault.
    max_retries: u32,
    /// Seed state for per-exchange backoff jitter: each exchange draws a
    /// fresh seed so concurrent exchanges (and successive windows) do not
    /// share a delay schedule, while the whole stream stays a
    /// deterministic function of the initial seed.
    seed: AtomicU64,
}

impl Clone for ServeClient {
    fn clone(&self) -> Self {
        ServeClient {
            addr: self.addr.clone(),
            max_retries: self.max_retries,
            // sast: relaxed-ok jitter seed fork; only stream divergence matters, not ordering
            seed: AtomicU64::new(self.seed.load(Ordering::Relaxed)),
        }
    }
}

impl ServeClient {
    /// A client for the server at `addr` (`host:port`), failing on the
    /// first transport fault (no retries).
    pub fn new(addr: impl Into<String>) -> Self {
        ServeClient {
            addr: addr.into(),
            max_retries: 0,
            seed: AtomicU64::new(0),
        }
    }

    /// A resilient client: transport faults and `overloaded` replies are
    /// retried up to `max_retries` times per exchange, with capped
    /// jittered exponential backoff drawn from `seed`.
    pub fn with_retries(mut self, max_retries: u32, seed: u64) -> Self {
        self.max_retries = max_retries;
        self.seed = AtomicU64::new(seed);
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The per-exchange transport retry budget.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// One connection, one request line, one reply line.
    fn exchange_once(&self, json: &str) -> Result<Response, StreamError> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| StreamError::Serve(format!("cannot connect to {}: {e}", self.addr)))?;
        stream
            .write_all(format!("{json}\n").as_bytes())
            .map_err(|e| StreamError::Serve(format!("cannot send to {}: {e}", self.addr)))?;
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .map_err(|e| StreamError::Serve(format!("cannot read reply: {e}")))?;
        if reply.trim().is_empty() {
            return Err(StreamError::Serve(format!(
                "{} closed the connection without replying",
                self.addr
            )));
        }
        serde_json::from_str(reply.trim())
            .map_err(|e| StreamError::Serve(format!("unparseable reply: {e}")))
    }

    /// Sends one request and reads one reply, reconnecting and retrying
    /// transport faults and `overloaded` replies within the configured
    /// budget. An overloaded reply that survives every retry is returned
    /// as-is for the caller to classify.
    fn exchange(&self, request: &Request) -> Result<Response, StreamError> {
        let json = serde_json::to_string(request)
            .map_err(|e| StreamError::Serve(format!("cannot encode request: {e}")))?;
        // sast: relaxed-ok backoff jitter draw; uniqueness per attempt is all that is needed
        let mut seed = self.seed.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new(RETRY_BASE_MS, RETRY_CAP_MS, splitmix64(&mut seed));
        loop {
            match self.exchange_once(&json) {
                Ok(Response::Overloaded(o)) if backoff.attempt() < self.max_retries => {
                    // The server told us when to come back; the schedule
                    // only ever waits longer than asked, never shorter.
                    std::thread::sleep(backoff.next_delay_at_least(o.retry_after_ms));
                }
                Ok(resp) => return Ok(resp),
                Err(e) if backoff.attempt() < self.max_retries => {
                    eprintln!(
                        "retrying {} (attempt {} of {}): {e}",
                        self.addr,
                        backoff.attempt() + 1,
                        self.max_retries,
                    );
                    std::thread::sleep(backoff.next_delay());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Asks the server to hot-swap in the model artifact at `path`.
    ///
    /// The swap is all-or-nothing on the server side; a rejected epoch
    /// comes back as [`SwapOutcome::Rejected`] with the old model still
    /// serving.
    pub fn reload(&self, path: &Path) -> Result<SwapOutcome, StreamError> {
        let request = Request::Reload {
            path: path.display().to_string(),
        };
        match self.exchange(&request)? {
            Response::Reload(r) => Ok(SwapOutcome::Swapped(r)),
            Response::Error(e) => Ok(SwapOutcome::Rejected(e.message)),
            Response::Overloaded(o) => Ok(SwapOutcome::Rejected(format!(
                "server overloaded (retry after {} ms)",
                o.retry_after_ms
            ))),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to reload: {other:?}"
            ))),
        }
    }

    /// Publishes the pipeline's cumulative status; returns whether the
    /// server accepted it (a refusal is not a transport error).
    pub fn report(&self, report: &StreamStatusReport) -> Result<bool, StreamError> {
        let request = Request::StreamReport {
            report: report.clone(),
        };
        match self.exchange(&request)? {
            Response::StreamReport(r) => Ok(r.accepted),
            Response::Error(_) | Response::Overloaded(_) => Ok(false),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to stream_report: {other:?}"
            ))),
        }
    }

    /// Fetches the server's metrics snapshot (which carries the last
    /// accepted stream status — this is what `quasar stream-stats` prints).
    pub fn metrics(&self) -> Result<MetricsSnapshot, StreamError> {
        match self.exchange(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            Response::Error(e) => Err(StreamError::Serve(format!(
                "metrics request failed: {}",
                e.message
            ))),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to metrics: {other:?}"
            ))),
        }
    }

    /// Probes the server's readiness: fleet status, per-shard states, and
    /// the last stream heartbeat (this is what `quasar health` prints).
    pub fn health(&self) -> Result<HealthReply, StreamError> {
        match self.exchange(&Request::Health)? {
            Response::Health(h) => Ok(h),
            Response::Error(e) => Err(StreamError::Serve(format!(
                "health request failed: {}",
                e.message
            ))),
            other => Err(StreamError::Serve(format!(
                "unexpected reply to health: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_serve::protocol::ErrorReply;
    use std::net::TcpListener;
    use std::thread;

    /// A single-shot fake server: accepts one connection, asserts the
    /// request tag, replies with a canned response.
    fn canned(reply: Response, expect_tag: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut line = String::new();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            reader.read_line(&mut line).unwrap();
            assert!(
                line.contains(&format!("\"type\":\"{expect_tag}\"")),
                "request line: {line}"
            );
            let mut stream = stream;
            let json = serde_json::to_string(&reply).unwrap();
            stream.write_all(format!("{json}\n").as_bytes()).unwrap();
        });
        addr
    }

    #[test]
    fn reload_distinguishes_swap_from_rejection() {
        let reply = ReloadReply {
            swapped: true,
            prefixes: 12,
            quasi_routers: 34,
            generation: 2,
        };
        let addr = canned(Response::Reload(reply), "reload");
        let outcome = ServeClient::new(addr)
            .reload(Path::new("/tmp/model"))
            .unwrap();
        assert_eq!(outcome, SwapOutcome::Swapped(reply));

        let addr = canned(
            Response::Error(ErrorReply {
                message: "reload rejected; keeping current model".into(),
            }),
            "reload",
        );
        let outcome = ServeClient::new(addr)
            .reload(Path::new("/tmp/model"))
            .unwrap();
        assert!(matches!(outcome, SwapOutcome::Rejected(m) if m.contains("rejected")));
    }

    #[test]
    fn transport_failure_is_an_error_not_a_rejection() {
        // Nothing listens on this address (bound then dropped).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = ServeClient::new(addr).reload(Path::new("/tmp/model"));
        assert!(matches!(err, Err(StreamError::Serve(_))), "{err:?}");
    }

    /// A fake server that slams the first `faults` connections shut
    /// without replying, then answers the next one with `reply`.
    fn flaky(reply: Response, faults: usize) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        thread::spawn(move || {
            for _ in 0..faults {
                let (stream, _) = listener.accept().unwrap();
                drop(stream); // close without replying: a transport fault
            }
            let (mut stream, _) = listener.accept().unwrap();
            let mut line = String::new();
            BufReader::new(stream.try_clone().unwrap())
                .read_line(&mut line)
                .unwrap();
            let json = serde_json::to_string(&reply).unwrap();
            stream.write_all(format!("{json}\n").as_bytes()).unwrap();
        });
        addr
    }

    #[test]
    fn resilient_client_reconnects_through_transport_faults() {
        let reply = ReloadReply {
            swapped: true,
            prefixes: 1,
            quasi_routers: 2,
            generation: 7,
        };
        let addr = flaky(Response::Reload(reply), 2);
        let client = ServeClient::new(addr).with_retries(3, 42);
        let outcome = client.reload(Path::new("/tmp/model")).unwrap();
        assert_eq!(outcome, SwapOutcome::Swapped(reply));
    }

    #[test]
    fn retry_budget_exhaustion_is_still_a_transport_error() {
        // Nothing ever listens here: every attempt is refused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client = ServeClient::new(addr).with_retries(1, 1);
        let err = client.reload(Path::new("/tmp/model"));
        assert!(matches!(err, Err(StreamError::Serve(_))), "{err:?}");
    }

    #[test]
    fn overloaded_reply_is_retried_then_surfaced_as_rejection() {
        // One overloaded reply, then success on the retry.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let reply = ReloadReply {
            swapped: true,
            prefixes: 1,
            quasi_routers: 1,
            generation: 1,
        };
        thread::spawn(move || {
            for overloaded in [true, false] {
                let (mut stream, _) = listener.accept().unwrap();
                let mut line = String::new();
                BufReader::new(stream.try_clone().unwrap())
                    .read_line(&mut line)
                    .unwrap();
                let resp = if overloaded {
                    Response::Overloaded(quasar_serve::protocol::OverloadedReply {
                        retry_after_ms: 1,
                    })
                } else {
                    Response::Reload(reply)
                };
                let json = serde_json::to_string(&resp).unwrap();
                stream.write_all(format!("{json}\n").as_bytes()).unwrap();
            }
        });
        let client = ServeClient::new(addr).with_retries(2, 9);
        let outcome = client.reload(Path::new("/tmp/model")).unwrap();
        assert_eq!(outcome, SwapOutcome::Swapped(reply));

        // With no retry budget the overloaded reply is classified as a
        // rejection, exactly as before.
        let addr = canned(
            Response::Overloaded(quasar_serve::protocol::OverloadedReply { retry_after_ms: 50 }),
            "reload",
        );
        let outcome = ServeClient::new(addr)
            .reload(Path::new("/tmp/model"))
            .unwrap();
        assert!(matches!(outcome, SwapOutcome::Rejected(m) if m.contains("overloaded")));
    }

    #[test]
    fn health_round_trip() {
        let reply = quasar_serve::protocol::HealthReply {
            status: "healthy".into(),
            generation: 3,
            panics_caught: 0,
            quarantines: 0,
            rebuilds: 0,
            rebuild_failures: 0,
            shards: None,
            stream: None,
        };
        let addr = canned(Response::Health(reply.clone()), "health");
        let got = ServeClient::new(addr).health().unwrap();
        assert_eq!(got, reply);
    }

    #[test]
    fn report_returns_acceptance() {
        let addr = canned(
            Response::StreamReport(quasar_serve::protocol::StreamReportReply {
                accepted: true,
                windows: 3,
            }),
            "stream_report",
        );
        let status = StreamStatusReport {
            windows: 3,
            ..StreamStatusReport::default()
        };
        assert!(ServeClient::new(addr).report(&status).unwrap());
    }
}
