//! Golden snapshot tests for the `repro` binary: the paper-table output
//! for a fixed seed at tiny scale is pinned byte-for-byte under
//! `tests/golden/`. Any change to the numbers — an engine tweak, a
//! refinement reordering, an RNG drift — shows up as a readable diff
//! here instead of silently rewriting the paper's tables.
//!
//! To bless intentional changes:
//! `UPDATE_GOLDEN=1 cargo test -p quasar-bench --test golden`

use std::path::PathBuf;
use std::process::Command;

/// The pinned invocation: default seed, tiny scale.
const SEED: &str = "20051113";
const SCALE: &str = "tiny";

/// Experiments with a checked-in snapshot. Deliberately the fast,
/// fully-deterministic subset — each runs in well under a minute at
/// tiny scale.
const EXPERIMENTS: &[&str] = &["t0", "fig2", "t2"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Runs `repro --exp <exp>` and returns its stdout. Stderr carries
/// timing chatter and is intentionally not part of the snapshot.
fn run_repro(exp: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--exp", exp, "--scale", SCALE, "--seed", SEED])
        .output()
        .unwrap_or_else(|e| panic!("failed to launch repro for {exp}: {e}"));
    assert!(
        out.status.success(),
        "repro --exp {exp} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro output is UTF-8")
}

/// First line where two snapshots differ, for a readable failure.
fn first_diff_line(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!("line {}:\n  golden: {w}\n  actual: {g}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs actual {}",
        want.lines().count(),
        got.lines().count()
    )
}

fn check_golden(exp: &str) {
    let got = run_repro(exp);
    let path = golden_dir().join(format!("{exp}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); \
             regenerate with UPDATE_GOLDEN=1 cargo test -p quasar-bench --test golden"
        )
    });
    assert!(
        want == got,
        "repro --exp {exp} --scale {SCALE} --seed {SEED} diverged from {path:?}\n{}\n\
         If the change is intentional, bless it with UPDATE_GOLDEN=1.",
        first_diff_line(&want, &got)
    );
}

#[test]
fn golden_t0_dataset_summary() {
    check_golden("t0");
}

#[test]
fn golden_fig2_route_diversity() {
    check_golden("fig2");
}

#[test]
fn golden_t2_baselines() {
    check_golden("t2");
}

#[test]
fn golden_set_is_complete() {
    // Every experiment listed above has a fixture, and every fixture
    // corresponds to a listed experiment — no orphans either way.
    let dir = golden_dir();
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("golden dir {dir:?} missing: {e}"))
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".txt").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "golden fixtures out of sync with EXPERIMENTS"
    );
}
