//! E-scale bench: per-prefix steady-state simulation cost as the model
//! grows (paper §4.1's C-BGP scalability claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quasar_bench::{Context, Scale};
use quasar_core::model::AsRoutingModel;

fn bench_engine_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_per_prefix");
    group.sample_size(10);
    for (name, scale) in [("tiny", Scale::Tiny), ("small", Scale::Small)] {
        let ctx = Context::build(scale, 1);
        let graph = ctx.dataset.as_graph();
        let model = AsRoutingModel::initial(&graph, &ctx.dataset.prefixes());
        let prefix = *model.prefixes().keys().next().expect("has prefixes");
        group.bench_with_input(
            BenchmarkId::new("simulate", name),
            &(model, prefix),
            |b, (model, prefix)| {
                b.iter(|| model.simulate(*prefix).expect("converges"));
            },
        );
    }
    group.finish();
}

fn bench_ground_truth_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ground_truth");
    group.sample_size(10);
    group.bench_function("generate_tiny_internet", |b| {
        b.iter(|| {
            quasar_netgen::observe::SyntheticInternet::generate(
                quasar_netgen::config::NetGenConfig::tiny(5),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine_scale, bench_ground_truth_generation);
criterion_main!(benches);
