//! E-train bench: cost of the iterative refinement heuristic (§4.6) and of
//! its building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use quasar_bench::{train_model, Context, Scale, SplitKind};
use quasar_core::prelude::*;

fn bench_refinement(c: &mut Criterion) {
    let ctx = Context::build(Scale::Tiny, 2);
    let (training, _) = SplitKind::ByPoint.split(&ctx.dataset, 2);

    let mut group = c.benchmark_group("refine");
    group.sample_size(10);
    group.bench_function("train_tiny_internet", |b| {
        b.iter(|| train_model(&ctx, &training, &RefineConfig::default()));
    });
    group.finish();
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let ctx = Context::build(Scale::Tiny, 2);
    let (training, _) = SplitKind::ByPoint.split(&ctx.dataset, 2);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut counts = vec![1usize, 2, 4, cores];
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&t| t == 1 || t <= cores);

    let mut group = c.benchmark_group("refine/parallel_vs_sequential");
    group.sample_size(10);
    for threads in counts {
        let cfg = RefineConfig {
            threads,
            ..RefineConfig::default()
        };
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| train_model(&ctx, &training, &cfg));
        });
    }
    group.finish();
}

fn bench_single_prefix_refinement(c: &mut Criterion) {
    let ctx = Context::build(Scale::Tiny, 3);
    let graph = ctx.dataset.as_graph();
    let prefixes = ctx.dataset.prefixes();
    // Pick the prefix with the most observed routes.
    let (&prefix, _) = prefixes.iter().next().expect("has prefixes");
    let paths: Vec<_> = ctx
        .dataset
        .routes_for(prefix)
        .map(|r| r.as_path.clone())
        .collect();

    let mut group = c.benchmark_group("refine_prefix");
    group.sample_size(20);
    group.bench_function("one_prefix", |b| {
        b.iter(|| {
            let mut model = AsRoutingModel::initial(&graph, &prefixes);
            let refs: Vec<&_> = paths.iter().collect();
            refine_prefix(&mut model, prefix, &refs, &RefineConfig::default())
                .expect("refinement runs")
        });
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let ctx = Context::build(Scale::Tiny, 4);
    let (training, validation) = SplitKind::ByPoint.split(&ctx.dataset, 4);
    let (model, _) = train_model(&ctx, &training, &RefineConfig::default());

    let mut group = c.benchmark_group("evaluate");
    group.sample_size(10);
    group.bench_function("validation_set", |b| {
        b.iter(|| evaluate(&model, &validation));
    });
    group.finish();
}

fn bench_whatif(c: &mut Criterion) {
    use quasar_core::whatif::{Change, Scenario};
    let ctx = Context::build(Scale::Tiny, 5);
    let (model, _) = train_model(&ctx, &ctx.dataset, &RefineConfig::default());
    let t1 = ctx.internet.as_topology.tier1();
    let (a, b) = (t1[0], t1[1]);

    let mut group = c.benchmark_group("whatif");
    group.sample_size(10);
    group.bench_function("depeer_diff_all_prefixes", |bch| {
        bch.iter(|| {
            Scenario::new(&model)
                .apply(Change::Depeer(a, b))
                .diff()
                .expect("scenario converges")
        });
    });
    group.finish();
}

fn bench_atoms(c: &mut Criterion) {
    use quasar_core::atoms::{refine_with_atoms, PolicyAtoms};
    let ctx = Context::build(Scale::Tiny, 6);
    let graph = ctx.dataset.as_graph();

    let mut group = c.benchmark_group("atoms");
    group.sample_size(10);
    group.bench_function("compute_atoms", |b| {
        b.iter(|| PolicyAtoms::compute(&ctx.dataset));
    });
    group.bench_function("refine_with_atoms_tiny", |b| {
        b.iter(|| {
            let mut model = AsRoutingModel::initial(&graph, &ctx.dataset.prefixes());
            refine_with_atoms(&mut model, &ctx.dataset, &RefineConfig::default())
                .expect("refinement runs")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_refinement,
    bench_parallel_vs_sequential,
    bench_single_prefix_refinement,
    bench_evaluation,
    bench_whatif,
    bench_atoms
);
criterion_main!(benches);
