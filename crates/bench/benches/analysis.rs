//! Benches for the §3 analyses (Figure 2, Table 1, T0) and the data
//! machinery they depend on (graph build, splits, MRT codec).

use criterion::{criterion_group, criterion_main, Criterion};
use quasar_bench::{Context, Scale};
use quasar_diversity::prelude::*;
use quasar_netgen::prelude::*;

fn bench_diversity(c: &mut Criterion) {
    let ctx = Context::build(Scale::Small, 5);
    let mut group = c.benchmark_group("diversity");
    group.sample_size(10);
    group.bench_function("fig2_histogram", |b| {
        b.iter(|| PathDiversityHistogram::from_dataset(&ctx.dataset));
    });
    group.bench_function("t1_quantiles", |b| {
        b.iter(|| DiversityQuantiles::from_dataset(&ctx.dataset));
    });
    group.bench_function("t0_summary", |b| {
        b.iter(|| summarize(&ctx.dataset, &ctx.tier1_seeds()));
    });
    group.finish();
}

fn bench_dataset_machinery(c: &mut Criterion) {
    let ctx = Context::build(Scale::Small, 6);
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("as_graph", |b| {
        b.iter(|| ctx.dataset.as_graph());
    });
    group.bench_function("split_by_point", |b| {
        b.iter(|| ctx.dataset.split_by_point(0.5, 7));
    });
    group.finish();
}

fn bench_mrt_codec(c: &mut Criterion) {
    let ctx = Context::build(Scale::Tiny, 7);
    let bytes = export_table_dump_v2(&ctx.internet.observation_points, &ctx.internet.observations);
    let mut group = c.benchmark_group("mrt");
    group.bench_function("export_table_dump_v2", |b| {
        b.iter(|| {
            export_table_dump_v2(&ctx.internet.observation_points, &ctx.internet.observations)
        });
    });
    group.bench_function("import_table_dump_v2", |b| {
        b.iter(|| import_table_dump_v2(&bytes).expect("well-formed"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_diversity,
    bench_dataset_machinery,
    bench_mrt_codec
);
criterion_main!(benches);
