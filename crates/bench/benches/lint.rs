//! Benchmarks the static analyzer end to end and per rule family: the
//! audit must stay decisively cheaper than a simulation pass, since it
//! runs inline in `train`, checkpoint recovery, and the serve reload
//! path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quasar_bench::{Context, Scale};
use quasar_core::prelude::*;

fn trained(seed: u64) -> AsRoutingModel {
    let ctx = Context::build(Scale::Tiny, seed);
    let mut model = AsRoutingModel::initial(&ctx.dataset.as_graph(), &ctx.dataset.prefixes());
    refine(&mut model, &ctx.dataset, &RefineConfig::default()).expect("tiny refinement converges");
    model.generalize_med_preferences();
    model
}

fn bench_audit(c: &mut Criterion) {
    let model = trained(5);
    let stats = model.stats();
    let mut group = c.benchmark_group("lint");
    group.bench_with_input(
        BenchmarkId::new("audit", format!("{}r", stats.policy_rules)),
        &model,
        |b, m| b.iter(|| quasar_lint::audit(m)),
    );
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
