//! Micro-benchmarks of the hot inner loops: the BGP decision process,
//! policy-chain application, and AS-path operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use quasar_bgpsim::prelude::*;

fn candidates(n: usize) -> Vec<Route> {
    (0..n)
        .map(|i| Route {
            prefix: Prefix::new(0x0A000000, 8),
            as_path: AsPath::from_u32s(
                &(0..(i % 5 + 1))
                    .map(|k| (k + i) as u32 + 1)
                    .collect::<Vec<_>>(),
            ),
            local_pref: 100,
            med: if i % 3 == 0 { Some(i as u32) } else { None },
            origin: Origin::Igp,
            from_router: Some(RouterId::new(Asn(i as u32 + 1), 0)),
            from_asn: Some(Asn(i as u32 + 1)),
            learned: LearnedVia::Ebgp,
            igp_cost: 0,
            communities: Vec::new(),
            originator: None,
        })
        .collect()
}

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision");
    for n in [2usize, 8, 32] {
        let routes = candidates(n);
        group.bench_with_input(BenchmarkId::new("decide", n), &routes, |b, routes| {
            b.iter(|| decide(routes, &DecisionConfig::default()));
        });
    }
    group.finish();
}

fn bench_policy(c: &mut Criterion) {
    let mut policy = Policy::permit_all();
    for i in 0..20u32 {
        policy.push(PolicyRule::new(
            RouteMatch::prefix(Prefix::for_origin(Asn(i + 1))),
            Action::SetMed(i),
        ));
    }
    let route = candidates(1).pop().unwrap();
    c.bench_function("policy_apply_20_rules", |b| {
        b.iter(|| policy.apply(&route));
    });
}

fn bench_aspath(c: &mut Criterion) {
    let path = AsPath::from_u32s(&[1, 2, 3, 4, 5, 6, 7]);
    let mut group = c.benchmark_group("aspath");
    group.bench_function("prepend", |b| b.iter(|| path.prepend(Asn(99))));
    group.bench_function("suffix", |b| b.iter(|| path.suffix(4)));
    group.bench_function("has_loop", |b| b.iter(|| path.has_loop()));
    group.finish();
}

criterion_group!(benches, bench_decision, bench_policy, bench_aspath);
criterion_main!(benches);
