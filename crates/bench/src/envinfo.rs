//! Host environment metadata stamped into every benchmark JSON so runs
//! are comparable across machines (ISSUE: BENCH_refine.json used to hard-
//! code `"cores": 1`).

use serde::Serialize;

/// Where a benchmark ran: enough to judge whether two result files are
/// comparable.
#[derive(Debug, Clone, Serialize)]
pub struct EnvInfo {
    /// `std::thread::available_parallelism()` — the real core budget the
    /// scheduler had, not a hard-coded guess.
    pub cores: usize,
    /// `git rev-parse HEAD` of the working tree, or `"unknown"` outside a
    /// repository.
    pub git_commit: String,
    /// `rustc --version`, or `"unknown"` if the toolchain is not on PATH.
    pub rustc: String,
}

impl EnvInfo {
    /// Probes the current host. Subprocess failures degrade to
    /// `"unknown"` rather than failing the benchmark.
    pub fn probe() -> EnvInfo {
        EnvInfo {
            cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            git_commit: run_trimmed("git", &["rev-parse", "HEAD"]),
            rustc: run_trimmed("rustc", &["--version"]),
        }
    }
}

fn run_trimmed(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_at_least_one_core_and_nonempty_fields() {
        let env = EnvInfo::probe();
        assert!(env.cores >= 1);
        assert!(!env.git_commit.is_empty());
        assert!(!env.rustc.is_empty());
    }

    #[test]
    fn missing_binaries_degrade_to_unknown() {
        assert_eq!(run_trimmed("definitely-not-a-binary-xyz", &[]), "unknown");
    }
}
