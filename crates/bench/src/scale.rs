//! E-scale: the engine-scalability experiment (paper §4.1).
//!
//! "it is thus possible to perform large-scale simulations for single
//! prefixes on topologies with more than 16,500 routers split among 14,500
//! ASes in 2–45 minutes with 200 MB–2 GB memory" — C-BGP, 2006 hardware.
//! This experiment measures our engine's per-prefix simulation time and
//! message volume as the model grows.

use quasar_core::model::AsRoutingModel;
use quasar_core::observed::Dataset;
use serde::Serialize;
use std::time::Instant;

/// One scaling measurement point.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// ASes in the model.
    pub ases: usize,
    /// Quasi-routers.
    pub routers: usize,
    /// eBGP sessions.
    pub sessions: usize,
    /// Prefixes simulated.
    pub prefixes: usize,
    /// Mean messages per prefix simulation.
    pub mean_messages: f64,
    /// Mean wall time per prefix simulation (µs).
    pub mean_micros: f64,
}

/// Simulates up to `max_prefixes` prefixes on the initial model of
/// `dataset` and reports the means.
pub fn measure_scale(dataset: &Dataset, max_prefixes: usize) -> ScalePoint {
    let graph = dataset.as_graph();
    let model = AsRoutingModel::initial(&graph, &dataset.prefixes());
    let stats = model.stats();
    let prefixes: Vec<_> = model.prefixes().keys().copied().collect();
    let n = prefixes.len().min(max_prefixes).max(1);

    let mut total_msgs = 0u64;
    let start = Instant::now();
    for &p in prefixes.iter().take(n) {
        let res = model.simulate(p).expect("initial model converges");
        total_msgs += res.stats.messages;
    }
    let elapsed = start.elapsed();

    ScalePoint {
        ases: stats.ases,
        routers: stats.quasi_routers,
        sessions: stats.sessions,
        prefixes: n,
        mean_messages: total_msgs as f64 / n as f64,
        mean_micros: elapsed.as_micros() as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, Scale};

    #[test]
    fn scale_measurement_runs() {
        let ctx = Context::build(Scale::Tiny, 3);
        let p = measure_scale(&ctx.dataset, 10);
        assert!(p.mean_messages > 0.0);
        assert!(p.routers >= p.ases);
        assert_eq!(p.prefixes, 10);
    }
}
