//! # quasar-bench — the experiment harness
//!
//! One function per table/figure of the paper (see DESIGN.md's experiment
//! index). The `repro` binary prints them; the Criterion benches measure
//! the computations behind them; EXPERIMENTS.md records paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envinfo;
pub mod experiments;
pub mod scale;

pub use envinfo::EnvInfo;
pub use experiments::*;
pub use scale::*;

use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_netgen::config::NetGenConfig;
use quasar_netgen::observe::SyntheticInternet;

/// Experiment scale presets (see EXPERIMENTS.md for the parameter table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast (44 ASes); used by tests.
    Tiny,
    /// The default experiment scale (hundreds of ASes). Accepts the
    /// legacy spelling `default` on CLIs.
    Small,
    /// Thousands of ASes — the former `paper` scale, closest to the
    /// paper's 14.5k-AS pruned graph that a laptop-scale run affords.
    Medium,
    /// Tens of thousands of ASes with ~1000 observation ASes (matching
    /// the paper's >1300 observation points); overnight runs only.
    Large,
}

impl Scale {
    /// Parses a CLI string. `default` and `paper` stay accepted as
    /// aliases for `small` and `medium`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" | "default" => Some(Scale::Small),
            "medium" | "paper" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }

    /// Every preset, ascending by size.
    pub fn all() -> [Scale; 4] {
        [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large]
    }

    /// The generator configuration for this scale.
    pub fn config(self, seed: u64) -> NetGenConfig {
        match self {
            Scale::Tiny => NetGenConfig::tiny(seed),
            Scale::Small => NetGenConfig::small(seed),
            Scale::Medium => NetGenConfig::medium(seed),
            Scale::Large => NetGenConfig::large(seed),
        }
    }
}

/// Everything the experiments share: the synthetic Internet (the "real
/// world") and its cleaned observation dataset.
pub struct Context {
    /// The ground truth.
    pub internet: SyntheticInternet,
    /// Cleaned feeds.
    pub dataset: Dataset,
    /// Scale used.
    pub scale: Scale,
    /// Seed used.
    pub seed: u64,
}

impl Context {
    /// Generates the synthetic Internet and derives the dataset.
    pub fn build(scale: Scale, seed: u64) -> Context {
        Self::build_with_obs(scale, seed, None)
    }

    /// Like [`Context::build`], overriding the number of observation ASes
    /// (the E-density lever; the paper's >80 % regime needs vantage
    /// coverage comparable to RouteViews+RIPE's).
    pub fn build_with_obs(scale: Scale, seed: u64, obs: Option<usize>) -> Context {
        let mut cfg = scale.config(seed);
        if let Some(n) = obs {
            cfg.num_observation_ases = n;
        }
        let internet = SyntheticInternet::generate(cfg);
        let dataset = Dataset::new(internet.observations.iter().map(|o| ObservedRoute {
            point: o.point,
            observer_as: o.observer_as,
            prefix: o.prefix,
            as_path: o.as_path.clone(),
        }));
        Context {
            internet,
            dataset,
            scale,
            seed,
        }
    }

    /// The true tier-1 ASNs (used as clique seeds, like the paper's
    /// well-known tier-1 list).
    pub fn tier1_seeds(&self) -> Vec<quasar_bgpsim::types::Asn> {
        self.internet.as_topology.tier1()
    }
}
