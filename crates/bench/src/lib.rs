//! # quasar-bench — the experiment harness
//!
//! One function per table/figure of the paper (see DESIGN.md's experiment
//! index). The `repro` binary prints them; the Criterion benches measure
//! the computations behind them; EXPERIMENTS.md records paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scale;

pub use experiments::*;
pub use scale::*;

use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_netgen::config::NetGenConfig;
use quasar_netgen::observe::SyntheticInternet;

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast; used by tests.
    Tiny,
    /// The default experiment scale (hundreds of ASes).
    Default,
    /// Thousands of ASes — closest to the paper's 14.5k-AS pruned graph
    /// that a laptop-scale run affords.
    Paper,
}

impl Scale {
    /// Parses a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The generator configuration for this scale.
    pub fn config(self, seed: u64) -> NetGenConfig {
        match self {
            Scale::Tiny => NetGenConfig::tiny(seed),
            Scale::Default => NetGenConfig {
                seed,
                ..NetGenConfig::default()
            },
            Scale::Paper => NetGenConfig::paper_scale(seed),
        }
    }
}

/// Everything the experiments share: the synthetic Internet (the "real
/// world") and its cleaned observation dataset.
pub struct Context {
    /// The ground truth.
    pub internet: SyntheticInternet,
    /// Cleaned feeds.
    pub dataset: Dataset,
    /// Scale used.
    pub scale: Scale,
    /// Seed used.
    pub seed: u64,
}

impl Context {
    /// Generates the synthetic Internet and derives the dataset.
    pub fn build(scale: Scale, seed: u64) -> Context {
        Self::build_with_obs(scale, seed, None)
    }

    /// Like [`Context::build`], overriding the number of observation ASes
    /// (the E-density lever; the paper's >80 % regime needs vantage
    /// coverage comparable to RouteViews+RIPE's).
    pub fn build_with_obs(scale: Scale, seed: u64, obs: Option<usize>) -> Context {
        let mut cfg = scale.config(seed);
        if let Some(n) = obs {
            cfg.num_observation_ases = n;
        }
        let internet = SyntheticInternet::generate(cfg);
        let dataset = Dataset::new(internet.observations.iter().map(|o| ObservedRoute {
            point: o.point,
            observer_as: o.observer_as,
            prefix: o.prefix,
            as_path: o.as_path.clone(),
        }));
        Context {
            internet,
            dataset,
            scale,
            seed,
        }
    }

    /// The true tier-1 ASNs (used as clique seeds, like the paper's
    /// well-known tier-1 list).
    pub fn tier1_seeds(&self) -> Vec<quasar_bgpsim::types::Asn> {
        self.internet.as_topology.tier1()
    }
}
