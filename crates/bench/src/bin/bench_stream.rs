//! `bench_stream` — measures the live-update pipeline end to end and
//! records the result as JSON.
//!
//! Usage:
//!   `bench_stream [--scales tiny,small] [--seed N] [--out FILE]
//!                 [--window-secs N]`
//!
//! The default scale list matches what the 1-core reference container
//! affords (a small-scale run is two ~4-minute from-scratch retrains
//! plus the replay); pass `--scales small,medium` on real hardware for
//! the medium-scale datapoint. The ≥ 5x acceptance gate applies to the
//! largest scale in the list.
//!
//! Per scale the tool builds a synthetic internet, perturbs a contiguous
//! block of at most 10 % of its prefixes with graph-preserving path
//! shifts, renders the before→after transition as an MRT archive (peer
//! table + before-RIB + timestamped updates), and replays it through
//! [`quasar_stream::pipeline::Pipeline`] against a live in-process
//! `quasar-serve` instance. Three headline numbers per scale:
//!
//! * **sustained updates/sec** — BGP4MP updates absorbed per second of
//!   window processing (apply + retrain + persist + swap), over the
//!   incremental windows;
//! * **p99 window-to-swap latency** — worst-case `refine_ms + swap_ms`
//!   across every epoch-producing window;
//! * **incremental speedup** — a from-scratch retrain of the final path
//!   set divided by the mean incremental window retrain. The acceptance
//!   bar: ≥ 5x on the largest scale measured (windows dirty ≤ 10 % of
//!   prefixes, so an incremental retrain touching only those domains must
//!   decisively beat redoing everything).
//!
//! After the scale runs, a **recovery drill** replays the tiny scenario
//! window by window, kills the server after the first swap, restarts it
//! cold before the last window, and records what the outage cost: the
//! wall-clock ms the circuit breaker spent on failed swap attempts
//! (`retry_overhead_ms`), the outage/catch-up counters, and whether the
//! post-outage epoch is byte-identical to the offline retrain
//! (`post_outage_deterministic` — gated).
//!
//! The default output file is `BENCH_stream.json`.

use quasar_bench::{Context, EnvInfo, Scale};
use quasar_core::model::AsRoutingModel;
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_core::persist::{self, load_model};
use quasar_core::refine::{refine, RefineConfig};
use quasar_mrt::prelude::*;
use quasar_netgen::prelude::*;
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_stream::ingest::{UpdateWindow, Windower};
use quasar_stream::pipeline::{Pipeline, StreamConfig};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// One scale's measurement.
#[derive(Debug, Serialize)]
struct Run {
    scale: String,
    prefixes: usize,
    routes: usize,
    /// Prefixes the transition actually dirties (≤ 10 % of `prefixes`).
    dirty_prefixes: usize,
    dirty_fraction: f64,
    updates_total: u64,
    windows: u64,
    incremental_windows: u64,
    swaps: u64,
    /// From-scratch retrain of the final path set, seconds.
    full_retrain_secs: f64,
    /// Mean retrain across the incremental windows, seconds.
    mean_incremental_secs: f64,
    /// Worst-case epoch publication latency across swapping windows, ms.
    p99_window_to_swap_ms: f64,
    sustained_updates_per_sec: f64,
    /// `full_retrain_secs / mean_incremental_secs`.
    speedup: f64,
}

/// The serve-outage drill's measurement (tiny scale).
#[derive(Debug, Serialize)]
struct RecoveryDrill {
    windows: u64,
    /// Closed→open breaker transitions observed (must be exactly 1).
    serve_outages: u64,
    /// Swaps that landed while the breaker was open (must be exactly 1).
    catch_up_swaps: u64,
    /// Wall ms spent on failed swap attempts and half-open probes
    /// across the outage windows — what riding out the outage cost on
    /// top of training.
    retry_overhead_ms: u64,
    /// The post-outage epoch is byte-identical to the offline
    /// from-scratch retrain of the same path set.
    post_outage_deterministic: bool,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    seed: u64,
    /// Host metadata: true core count, git commit, rustc version.
    env: EnvInfo,
    window_secs: u32,
    speedup_gate: f64,
    runs: Vec<Run>,
    /// Speedup on the largest scale measured — the gated headline.
    headline_speedup: f64,
    /// The serve-outage recovery drill.
    recovery: RecoveryDrill,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The cleaned dataset the training CLI would build from raw observations.
fn dataset_of(observations: &[RouteObservation]) -> Dataset {
    Dataset::new(observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }))
}

/// Trains `dataset` from scratch and persists it with the `quasar train`
/// artifact recipe, returning the wall seconds for the whole epoch.
fn full_retrain(dataset: &Dataset, out: &Path) -> f64 {
    let cfg = RefineConfig {
        threads: 1,
        ..RefineConfig::default()
    };
    let t0 = Instant::now();
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, dataset, &cfg).expect("from-scratch retrain");
    model.generalize_med_preferences();
    let json = model.to_json().expect("serialize model");
    persist::save_artifact(out, persist::KIND_MODEL, json.as_bytes()).expect("persist baseline");
    t0.elapsed().as_secs_f64()
}

/// One-shot request/reply against the bench server.
fn request(addr: std::net::SocketAddr, req: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("{req}\n").as_bytes())
        .expect("send request");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    reply
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("quasar-bench-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn bench_scale(scale: Scale, seed: u64, window_secs: u32, seed_model_json: &str) -> Run {
    let dir = scratch_dir(scale.name());
    eprintln!("# [{}] building context ...", scale.name());
    let ctx = Context::build(scale, seed);
    let points = &ctx.internet.observation_points;
    let before = &ctx.internet.observations;
    let n_prefixes = ctx.dataset.prefixes().len();

    // A contiguous block of at most 10 % of the prefix space takes the
    // graph-preserving path shifts; everything outside it stays clean.
    let block_len = (n_prefixes / 10).max(1);
    let block_start = n_prefixes / 3;
    let perturbation = perturb_observations_in_block(
        points,
        before,
        &PerturbationConfig::graph_preserving(block_len),
        seed ^ 0xB10C,
        (block_start, block_len),
    );
    let dirty_fraction = perturbation.dirty_prefixes.len() as f64 / n_prefixes.max(1) as f64;
    assert!(
        n_prefixes == 1 || dirty_fraction <= 0.10 + 1e-9,
        "perturbation dirtied {:.1}% of prefixes, bench requires ≤ 10%",
        dirty_fraction * 100.0
    );
    assert!(
        !perturbation.dirty_prefixes.is_empty(),
        "nothing perturbed at scale {}",
        scale.name()
    );

    let records = transition_stream(
        points,
        before,
        &perturbation.after,
        &UpdateStreamConfig::default(),
        seed ^ 0x57EA,
    );
    let updates = dir.join("updates.mrt");
    {
        let mut w = MrtWriter::new(Vec::new());
        for r in &records {
            w.write_record(r).expect("encode record");
        }
        std::fs::write(&updates, w.finish().expect("finish archive")).expect("write archive");
    }

    // Baseline: what keeping the model fresh costs *without* streaming —
    // a from-scratch retrain of the final path set.
    eprintln!(
        "# [{}] timing the from-scratch retrain baseline ...",
        scale.name()
    );
    let full_retrain_secs =
        full_retrain(&dataset_of(&perturbation.after), &dir.join("full.quasar"));
    eprintln!(
        "# [{}] full retrain: {:.2}s",
        scale.name(),
        full_retrain_secs
    );

    // Live server. It starts on a small pre-trained seed model — the
    // first streamed epoch swaps the real one in, exactly like attaching
    // a pipeline to an already-running server.
    let seed_artifact = dir.join("seed.quasar");
    persist::save_artifact(
        &seed_artifact,
        persist::KIND_MODEL,
        seed_model_json.as_bytes(),
    )
    .expect("persist seed model");
    let state = Arc::new(ServerState::new(
        load_model(&seed_artifact).expect("seed model"),
        ServeConfig::default(),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(state, listener))
    };

    eprintln!("# [{}] replaying the update stream ...", scale.name());
    let model_out = dir.join("model.quasar");
    let mut pipeline = Pipeline::new(StreamConfig {
        updates,
        model_out: model_out.clone(),
        serve_addr: Some(addr.to_string()),
        window_secs,
        threads: 1,
        ..StreamConfig::default()
    })
    .expect("pipeline");
    let report = pipeline.run_file().expect("replay");
    request(addr, r#"{"type":"shutdown"}"#);
    server
        .join()
        .expect("server thread")
        .expect("server drained cleanly");

    assert!(report.source_error.is_none(), "{report:?}");
    assert_eq!(report.status.swaps_rejected, 0, "{report:?}");
    assert!(report.status.swaps >= 1, "{report:?}");
    assert!(
        report.status.incremental_windows >= 1,
        "graph-preserving shifts must take the incremental path: {report:?}"
    );
    // The streamed epoch and the offline baseline are the same bytes —
    // the speedup below compares two routes to an *identical* artifact.
    assert_eq!(
        std::fs::read(&model_out).expect("streamed artifact"),
        std::fs::read(dir.join("full.quasar")).expect("baseline artifact"),
        "streamed epoch diverged from the from-scratch retrain"
    );

    let incremental: Vec<_> = report
        .windows
        .iter()
        .filter(|w| w.mode.starts_with("incremental"))
        .collect();
    let mean_incremental_secs = incremental
        .iter()
        .map(|w| w.refine_ms as f64 / 1e3)
        .sum::<f64>()
        / incremental.len().max(1) as f64;
    let mut swap_latencies: Vec<f64> = report
        .windows
        .iter()
        .filter(|w| w.mode != "no_change")
        .map(|w| (w.refine_ms + w.swap_ms) as f64)
        .collect();
    swap_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (mut updates_seen, mut busy_secs) = (0u64, 0f64);
    for w in &incremental {
        if w.updates > 0 && w.updates_per_sec > 0.0 {
            updates_seen += w.updates;
            busy_secs += w.updates as f64 / w.updates_per_sec;
        }
    }
    let speedup = full_retrain_secs / mean_incremental_secs.max(1e-9);
    eprintln!(
        "# [{}] {} windows ({} incremental), mean incremental {:.3}s, p99 window-to-swap {:.0}ms, speedup {:.1}x",
        scale.name(),
        report.status.windows,
        incremental.len(),
        mean_incremental_secs,
        percentile(&swap_latencies, 0.99),
        speedup
    );

    let _ = std::fs::remove_dir_all(&dir);
    Run {
        scale: scale.name().into(),
        prefixes: n_prefixes,
        routes: ctx.dataset.routes().len(),
        dirty_prefixes: perturbation.dirty_prefixes.len(),
        dirty_fraction,
        updates_total: report.status.updates_total,
        windows: report.status.windows,
        incremental_windows: report.status.incremental_windows,
        swaps: report.status.swaps,
        full_retrain_secs,
        mean_incremental_secs,
        p99_window_to_swap_ms: percentile(&swap_latencies, 0.99),
        sustained_updates_per_sec: updates_seen as f64 / busy_secs.max(1e-9),
        speedup,
    }
}

/// Binds `addr`, retrying briefly: the killed server's connections may
/// hold the port in TIME_WAIT for a moment.
fn rebind(addr: std::net::SocketAddr) -> TcpListener {
    let t0 = Instant::now();
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) if t0.elapsed().as_secs() < 10 => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => panic!("cannot rebind {addr}: {e}"),
        }
    }
}

/// The serve-outage drill: replay the tiny transition window by window,
/// kill the server after the first swap, restart it cold before the
/// last window, and measure what riding out the outage cost.
fn recovery_drill(seed: u64, seed_model_json: &str) -> RecoveryDrill {
    let dir = scratch_dir("recovery");
    let ctx = Context::build(Scale::Tiny, seed);
    let points = &ctx.internet.observation_points;
    let before = &ctx.internet.observations;
    let perturbation = perturb_observations(
        points,
        before,
        &PerturbationConfig::graph_preserving(5),
        seed ^ 0xFA11,
    );
    let records = transition_stream(
        points,
        before,
        &perturbation.after,
        &UpdateStreamConfig::default(),
        seed ^ 0x5EED,
    );
    // The uninterrupted ground truth: the offline retrain of the final
    // path set, byte for byte.
    let baseline = dir.join("full.quasar");
    full_retrain(&dataset_of(&perturbation.after), &baseline);
    let want = std::fs::read(&baseline).expect("baseline bytes");

    let mut windower = Windower::new(1_800, 10_000);
    let mut windows: Vec<UpdateWindow> = records
        .iter()
        .filter_map(|r| windower.push(r.clone()))
        .collect();
    windows.extend(windower.flush());
    assert!(
        windows.len() >= 3,
        "the drill needs pre-outage, outage and recovery windows ({} windows)",
        windows.len()
    );

    let seed_artifact = dir.join("seed.quasar");
    persist::save_artifact(
        &seed_artifact,
        persist::KIND_MODEL,
        seed_model_json.as_bytes(),
    )
    .expect("persist seed model");
    let boot = || {
        Arc::new(ServerState::new(
            load_model(&seed_artifact).expect("seed model"),
            ServeConfig::default(),
        ))
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let state = boot();
    let server = std::thread::spawn(move || serve(state, listener));

    let model_out = dir.join("model.quasar");
    let mut pipeline = Pipeline::new(StreamConfig {
        updates: dir.join("unused.mrt"),
        model_out: model_out.clone(),
        window_secs: 1_800,
        threads: 1,
        serve_addr: Some(addr.to_string()),
        ..StreamConfig::default()
    })
    .expect("pipeline");

    // First window swaps into the live server, then the server dies.
    pipeline.process_window(&windows[0]).expect("window 0");
    assert_eq!(pipeline.status().swaps, 1, "first epoch must swap");
    request(addr, r#"{"type":"shutdown"}"#);
    server
        .join()
        .expect("server thread")
        .expect("server drained cleanly");

    // Outage windows: training continues; swap_ms on persisted windows
    // is exactly the time burnt on the failed retry schedule and the
    // breaker's half-open probes.
    let last = windows.len() - 1;
    let mut retry_overhead_ms = 0u64;
    for w in &windows[1..last] {
        let r = pipeline.process_window(w).expect("outage window");
        retry_overhead_ms += r.swap_ms;
    }
    assert_eq!(
        pipeline.status().serve_outages,
        1,
        "one outage, counted once: {:?}",
        pipeline.status()
    );

    // Cold restart on the same address; the next window catches up.
    let listener = rebind(addr);
    let state = boot();
    let server = std::thread::spawn(move || serve(state, listener));
    pipeline
        .process_window(&windows[last])
        .expect("recovery window");
    assert_eq!(
        pipeline.status().catch_up_swaps,
        1,
        "recovery must land as a catch-up swap: {:?}",
        pipeline.status()
    );
    request(addr, r#"{"type":"shutdown"}"#);
    server
        .join()
        .expect("server thread")
        .expect("server drained cleanly");

    let post_outage_deterministic = std::fs::read(&model_out).expect("streamed artifact") == want;
    let drill = RecoveryDrill {
        windows: pipeline.status().windows,
        serve_outages: pipeline.status().serve_outages,
        catch_up_swaps: pipeline.status().catch_up_swaps,
        retry_overhead_ms,
        post_outage_deterministic,
    };
    eprintln!(
        "# recovery drill: {} windows, retry overhead {}ms, post-outage \
         deterministic: {}",
        drill.windows, drill.retry_overhead_ms, drill.post_outage_deterministic
    );
    let _ = std::fs::remove_dir_all(&dir);
    drill
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scales_arg = flag("--scales").unwrap_or_else(|| "tiny,small".into());
    let scales: Vec<Scale> = scales_arg
        .split(',')
        .map(|s| {
            Scale::parse(s.trim()).unwrap_or_else(|| {
                eprintln!("bad scale {s} in --scales {scales_arg}");
                std::process::exit(2)
            })
        })
        .collect();
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(7);
    let out = flag("--out").unwrap_or_else(|| "BENCH_stream.json".into());
    let window_secs: u32 = flag("--window-secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    const SPEEDUP_GATE: f64 = 5.0;

    // A tiny pre-trained model every scale's server boots from (the
    // pipeline's first swapped epoch replaces it immediately).
    let seed_model_json = {
        let ctx = Context::build(Scale::Tiny, seed ^ 0x0B00);
        let cfg = RefineConfig {
            threads: 1,
            ..RefineConfig::default()
        };
        let mut model = AsRoutingModel::initial(&ctx.dataset.as_graph(), &ctx.dataset.prefixes());
        refine(&mut model, &ctx.dataset, &cfg).expect("seed model trains");
        model.generalize_med_preferences();
        model.to_json().expect("seed model serializes")
    };

    let runs: Vec<Run> = scales
        .iter()
        .map(|&scale| bench_scale(scale, seed, window_secs, &seed_model_json))
        .collect();
    let headline_speedup = runs.last().map(|r| r.speedup).unwrap_or(0.0);

    eprintln!("# running the serve-outage recovery drill (tiny scale) ...");
    let recovery = recovery_drill(seed, &seed_model_json);

    let record = Record {
        seed,
        env: EnvInfo::probe(),
        window_secs,
        speedup_gate: SPEEDUP_GATE,
        runs,
        headline_speedup,
        recovery,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    quasar_core::persist::atomic_write_bytes(&out, json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!("wrote {out} (incremental speedup {headline_speedup:.1}x)");
    if headline_speedup < SPEEDUP_GATE {
        eprintln!(
            "FAIL: incremental speedup {headline_speedup:.1}x below the {SPEEDUP_GATE:.0}x acceptance bar"
        );
        std::process::exit(1)
    }
    if !record.recovery.post_outage_deterministic {
        eprintln!("FAIL: the post-outage epoch diverged from the offline retrain");
        std::process::exit(1)
    }
}
