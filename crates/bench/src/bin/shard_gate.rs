//! `shard_gate` — CI gate over a freshly produced `BENCH_serve.json`.
//!
//! Usage:
//!   `shard_gate --fresh FILE [--baseline FILE] [--min-ratio 1.0]
//!               [--client-procs 4]`
//!
//! Checks, in order:
//!
//! 1. **Per-cell determinism** — the record's `deterministic` flag must
//!    be true: every `shards × client_procs` cell hashed byte-identical
//!    canonical replies. Always enforced; sharding that changes an
//!    answer is a correctness bug, not a performance trade.
//! 2. **Warm-cache bar** — the recorded `warm_speedup` must be ≥ 10x,
//!    the serving tier's standing acceptance bar. Always enforced.
//! 3. **Self-healing drill** — when the record carries
//!    `recovery_deterministic` (records produced since the quarantine
//!    drill landed), it must be true: a shard that went through
//!    quarantine → rebuild → reinstate must answer the exact
//!    pre-quarantine bytes. The drill's `shard_rebuild_mttr_ms` is
//!    reported but not gated (wall-clock recovery is host-dependent).
//! 4. **Shard scaling smoke** — at `--client-procs` (default 4) client
//!    processes, the 2-shard warm qps must be at least `--min-ratio`
//!    (default 1.0) times the 1-shard warm qps: adding a shard must not
//!    cost throughput under a saturating client fleet. Only enforced
//!    when the fresh run's host had at least 4 cores; below that the
//!    shards contend for the same cores and the gate prints a loud SKIP
//!    and exits 0 (the other checks still apply).
//!
//! `--baseline` (when given) is parsed under the same schema as a drift
//! guard — a committed baseline the fresh schema can no longer read is
//! a failure — but its numbers are not compared: absolute qps is not
//! portable across hosts.
//!
//! Exit status 0 = pass (or justified skip), 1 = any check failed,
//! 2 = usage / unreadable input.

use serde::Deserialize;

/// The subset of `bench_serve`'s record the gate reads. Unknown fields
/// are ignored so the gate tolerates schema growth.
#[derive(Debug, Deserialize)]
struct Record {
    env: Env,
    matrix: Vec<Cell>,
    deterministic: bool,
    warm_speedup: f64,
    /// Self-healing drill numbers; optional so baselines recorded
    /// before the drill existed still parse.
    #[serde(default)]
    shard_rebuild_mttr_ms: Option<f64>,
    #[serde(default)]
    recovery_deterministic: Option<bool>,
}

#[derive(Debug, Deserialize)]
struct Env {
    cores: usize,
}

#[derive(Debug, Deserialize)]
struct Cell {
    shards: usize,
    client_procs: usize,
    warm: Phase,
    replies_fnv: String,
}

#[derive(Debug, Deserialize)]
struct Phase {
    qps: f64,
}

fn load(path: &str) -> Record {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("shard_gate: cannot read {path}: {e}");
        std::process::exit(2)
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("shard_gate: cannot parse {path}: {e}");
        std::process::exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let fresh_path = flag("--fresh").unwrap_or_else(|| {
        eprintln!(
            "usage: shard_gate --fresh FILE [--baseline FILE] [--min-ratio 1.0] \
             [--client-procs 4]"
        );
        std::process::exit(2)
    });
    let min_ratio: f64 = flag("--min-ratio")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let gated_procs: usize = flag("--client-procs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let fresh = load(&fresh_path);
    let mut failed = false;

    // 1. Per-cell determinism — non-negotiable at every matrix cell.
    if !fresh.deterministic {
        let hashes: Vec<String> = fresh
            .matrix
            .iter()
            .map(|c| format!("{}x{} -> {}", c.shards, c.client_procs, c.replies_fnv))
            .collect();
        eprintln!("FAIL: canonical replies differ across cells: {hashes:?}");
        failed = true;
    } else {
        println!(
            "ok: canonical replies byte-identical across all {} cells",
            fresh.matrix.len()
        );
    }

    // 2. The steady-state cache bar carried over from the old harness.
    if fresh.warm_speedup < 10.0 {
        eprintln!(
            "FAIL: warm cache speedup {:.1}x below the 10x bar",
            fresh.warm_speedup
        );
        failed = true;
    } else {
        println!("ok: warm cache speedup {:.1}x >= 10x", fresh.warm_speedup);
    }

    // 3. Self-healing drill — a recovered shard answering different
    // bytes is a correctness bug; the MTTR itself is recorded, not
    // gated (wall-clock recovery time is not portable across hosts).
    match fresh.recovery_deterministic {
        Some(true) => println!(
            "ok: replies byte-identical after quarantine/rebuild \
             (MTTR {:.1}ms)",
            fresh.shard_rebuild_mttr_ms.unwrap_or(0.0)
        ),
        Some(false) => {
            eprintln!("FAIL: replies changed after the quarantine/rebuild drill");
            failed = true;
        }
        None => println!("note: record predates the self-healing drill; skipping"),
    }

    // 4. Shard scaling smoke — only meaningful with real cores to spend.
    if fresh.env.cores < 4 {
        println!(
            "SKIP: host has {} core(s) (<4) — shards contend for the same cores \
             here, so a scaling bar is not physically meaningful; skipping the \
             shard scaling check. Run this gate on a multi-core host to enforce it.",
            fresh.env.cores
        );
    } else {
        let warm_qps = |shards: usize| {
            fresh
                .matrix
                .iter()
                .find(|c| c.shards == shards && c.client_procs == gated_procs)
                .map(|c| c.warm.qps)
        };
        match (warm_qps(1), warm_qps(2)) {
            (Some(q1), Some(q2)) => {
                let ratio = q2 / q1.max(1e-9);
                if ratio < min_ratio {
                    eprintln!(
                        "FAIL: 2-shard warm qps {q2:.0} is {ratio:.2}x of 1-shard \
                         {q1:.0} at {gated_procs} client procs (bar {min_ratio:.2}x)"
                    );
                    failed = true;
                } else {
                    println!(
                        "ok: 2-shard warm qps {q2:.0} >= {min_ratio:.2}x of 1-shard \
                         {q1:.0} at {gated_procs} client procs ({ratio:.2}x)"
                    );
                }
            }
            _ => {
                eprintln!(
                    "FAIL: fresh matrix lacks (shards=1|2, client_procs={gated_procs}) cells"
                );
                failed = true;
            }
        }
    }

    // Schema drift guard on the committed baseline, numbers uncompared.
    if let Some(baseline_path) = flag("--baseline") {
        let baseline = load(&baseline_path);
        println!(
            "ok: baseline {baseline_path} parses under the current schema \
             ({} cells)",
            baseline.matrix.len()
        );
    }

    if failed {
        std::process::exit(1)
    }
    println!("shard_gate: all applicable checks passed");
}
