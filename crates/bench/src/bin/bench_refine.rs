//! `bench_refine` — measures the sharded parallel refinement against the
//! sequential (one-thread) path across a scale×threads matrix and records
//! the result as JSON.
//!
//! Usage:
//!   `bench_refine [--scales tiny,small,...] [--threads 1,2,4,8]
//!                 [--seed N] [--out FILE]`
//!
//! For every scale preset and every thread count the tool trains a fresh
//! model on the same training split and records wall time, heap-allocation
//! counts/bytes (via a counting global allocator), and the speedup against
//! the same scale's one-thread run. It also asserts that every thread
//! count produces a byte-identical serialized model — the determinism
//! contract of `refine`. Host environment metadata (true core count, git
//! commit, rustc version) is stamped into the record so results from
//! different machines are comparable. The default output file is
//! `BENCH_refine.json`.

use quasar_bench::{train_model, Context, EnvInfo, Scale, SplitKind};
use quasar_core::prelude::*;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with allocation counters, so the zero-clone
/// claims of the simulation hot path are measurable rather than asserted.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation counters sampled around a measured region.
fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Peak resident set size in kibibytes (`VmHWM`), if the platform exposes
/// it.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One (scale, threads) cell's measurement.
#[derive(Debug, Serialize)]
struct Run {
    threads: usize,
    wall_secs: f64,
    alloc_calls: u64,
    alloc_bytes: u64,
    speedup_vs_sequential: f64,
    converged: bool,
}

/// One scale's row of the matrix.
#[derive(Debug, Serialize)]
struct ScaleRow {
    scale: String,
    training_routes: usize,
    prefixes: usize,
    /// Every thread count serialized to the same model bytes.
    deterministic: bool,
    runs: Vec<Run>,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    seed: u64,
    /// Host metadata: true core count, git commit, rustc version.
    env: EnvInfo,
    matrix: Vec<ScaleRow>,
    /// Every cell of the matrix was deterministic.
    deterministic: bool,
    peak_rss_kib: Option<u64>,
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Vec<T> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                eprintln!("bad {what} entry {p:?}");
                std::process::exit(2)
            })
        })
        .collect()
}

fn bench_scale(scale: Scale, seed: u64, thread_counts: &[usize]) -> ScaleRow {
    eprintln!(
        "# building context (scale {}, seed {seed}) ...",
        scale.name()
    );
    let ctx = Context::build(scale, seed);
    let (training, _) = SplitKind::ByPoint.split(&ctx.dataset, seed);
    eprintln!(
        "# {} training routes over {} prefixes; thread counts {thread_counts:?}",
        training.len(),
        training.prefixes().len(),
    );

    let mut runs = Vec::new();
    let mut jsons: Vec<String> = Vec::new();
    let mut sequential_secs = f64::NAN;
    for &threads in thread_counts {
        let cfg = RefineConfig {
            threads,
            ..RefineConfig::default()
        };
        let (calls0, bytes0) = alloc_snapshot();
        let t0 = Instant::now();
        let (model, result) = train_model(&ctx, &training, &cfg);
        let wall_secs = t0.elapsed().as_secs_f64();
        let (calls1, bytes1) = alloc_snapshot();
        if threads == 1 {
            sequential_secs = wall_secs;
        }
        let speedup = sequential_secs / wall_secs.max(1e-9);
        jsons.push(model.to_json().expect("model serializes"));
        runs.push(Run {
            threads,
            wall_secs,
            alloc_calls: calls1 - calls0,
            alloc_bytes: bytes1 - bytes0,
            speedup_vs_sequential: speedup,
            converged: result.converged,
        });
        eprintln!(
            "# {} x threads {threads}: {wall_secs:.2}s, {} allocs, speedup {speedup:.2}x",
            scale.name(),
            calls1 - calls0,
        );
    }

    ScaleRow {
        scale: scale.name().to_string(),
        training_routes: training.len(),
        prefixes: training.prefixes().len(),
        deterministic: jsons.windows(2).all(|w| w[0] == w[1]),
        runs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale_list = flag("--scales")
        .or_else(|| flag("--scale")) // legacy singular spelling
        .unwrap_or_else(|| "tiny,small".into());
    let scales: Vec<Scale> = scale_list
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            Scale::parse(p.trim()).unwrap_or_else(|| {
                eprintln!("bad scale {p:?} (want tiny|small|medium|large)");
                std::process::exit(2)
            })
        })
        .collect();
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(2);
    let out = flag("--out").unwrap_or_else(|| "BENCH_refine.json".into());
    let env = EnvInfo::probe();
    // Fixed curve so records from different machines are comparable; a
    // thread count above the core count is harmless oversubscription.
    let mut thread_counts: Vec<usize> = flag("--threads")
        .map(|s| parse_list(&s, "--threads"))
        .unwrap_or_else(|| vec![1, 2, 4, 8, env.cores]);
    thread_counts.sort_unstable();
    thread_counts.dedup();
    if thread_counts.first() != Some(&1) {
        eprintln!("--threads must include 1 (the sequential baseline)");
        std::process::exit(2)
    }

    let matrix: Vec<ScaleRow> = scales
        .iter()
        .map(|&s| bench_scale(s, seed, &thread_counts))
        .collect();
    let deterministic = matrix.iter().all(|row| row.deterministic);
    let record = Record {
        seed,
        env,
        matrix,
        deterministic,
        peak_rss_kib: peak_rss_kib(),
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    quasar_core::persist::atomic_write_bytes(&out, json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!("wrote {out} (deterministic across thread counts: {deterministic})");
    if !deterministic {
        std::process::exit(1)
    }
}
