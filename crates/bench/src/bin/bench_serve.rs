//! `bench_serve` — measures `quasar-serve` query throughput over real TCP
//! and records the result as JSON.
//!
//! Usage:
//!   `bench_serve [--scale tiny|small|medium|large] [--seed N] [--out FILE]
//!                [--warm-iters N]`
//!
//! For each client-thread count (1, 4, 8) the tool starts a fresh
//! in-process server on an ephemeral port and drives it through two
//! phases:
//!
//! * **cold** — every prefix predicted exactly once (each request pays a
//!   full steady-state simulation and populates the per-prefix cache),
//! * **warm** — `--warm-iters` further passes over the same prefixes
//!   (each request is answered from the cache).
//!
//! Client-side latencies give qps / p50 / p99 per phase; the headline
//! `warm_speedup` (mean cold / mean warm latency on the single-client
//! run) must be ≥ 10x — the acceptance bar for the steady-state cache.
//! The default output file is `BENCH_serve.json`.

use quasar_bench::{train_model, Context, EnvInfo, Scale};
use quasar_core::prelude::*;
use quasar_serve::protocol::Request;
use quasar_serve::server::{serve, ServeConfig, ServerState};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// One phase's client-side measurement.
#[derive(Debug, Serialize)]
struct Phase {
    requests: usize,
    wall_secs: f64,
    qps: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

/// One client-thread count's cold/warm pair.
#[derive(Debug, Serialize)]
struct Run {
    client_threads: usize,
    cold: Phase,
    warm: Phase,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    scale: String,
    seed: u64,
    /// Host metadata: true core count, git commit, rustc version.
    env: EnvInfo,
    prefixes: usize,
    observers: usize,
    server_workers: usize,
    warm_iters: usize,
    runs: Vec<Run>,
    /// Mean cold / mean warm latency with a single client.
    warm_speedup: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn phase_stats(mut latencies_us: Vec<f64>, wall_secs: f64) -> Phase {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let requests = latencies_us.len();
    let mean_us = latencies_us.iter().sum::<f64>() / requests.max(1) as f64;
    Phase {
        requests,
        wall_secs,
        qps: requests as f64 / wall_secs.max(1e-9),
        mean_us,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

/// Sends each request in lockstep over one connection, returning the
/// per-request latencies in microseconds.
fn drive(addr: std::net::SocketAddr, requests: &[String]) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).expect("disable Nagle");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let mut latencies = Vec::with_capacity(requests.len());
    let mut line = String::new();
    for req in requests {
        line.clear();
        line.push_str(req);
        line.push('\n');
        let t0 = Instant::now();
        writer.write_all(line.as_bytes()).expect("send request");
        reply.clear();
        reader.read_line(&mut reply).expect("read reply");
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(
            !reply.contains(r#""type":"error""#),
            "server error for {req}: {reply}"
        );
    }
    latencies
}

/// Runs one phase: `threads` clients, each with its own request slice.
fn run_phase(addr: std::net::SocketAddr, per_client: Vec<Vec<String>>) -> Phase {
    let t0 = Instant::now();
    let handles: Vec<_> = per_client
        .into_iter()
        .map(|reqs| std::thread::spawn(move || drive(addr, &reqs)))
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    phase_stats(latencies, t0.elapsed().as_secs_f64())
}

/// Splits `requests` round-robin into `threads` slices.
fn partition(requests: &[String], threads: usize) -> Vec<Vec<String>> {
    let mut out = vec![Vec::new(); threads];
    for (i, r) in requests.iter().enumerate() {
        out[i % threads].push(r.clone());
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale_name = flag("--scale").unwrap_or_else(|| "tiny".into());
    let scale = Scale::parse(&scale_name).unwrap_or_else(|| {
        eprintln!("bad --scale {scale_name}");
        std::process::exit(2)
    });
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(2);
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let warm_iters: usize = flag("--warm-iters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    eprintln!("# building context (scale {scale:?}, seed {seed}) ...");
    let ctx = Context::build(scale, seed);
    eprintln!("# training model on the full dataset ...");
    let (model, _) = train_model(&ctx, &ctx.dataset, &RefineConfig::default());

    let prefixes: Vec<String> = model.prefixes().keys().map(|p| p.to_string()).collect();
    let observers: Vec<u32> = ctx
        .dataset
        .routes()
        .iter()
        .map(|r| r.observer_as.0)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    eprintln!(
        "# {} prefixes, {} observer ASes; warm iters {warm_iters}",
        prefixes.len(),
        observers.len()
    );

    // One predict per prefix, observers cycled deterministically. The
    // cold pass sends each exactly once; warm passes repeat the list.
    let cold_requests: Vec<String> = prefixes
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let req = Request::Predict {
                prefix: p.clone(),
                observer: observers[i % observers.len()],
                observed_path: None,
            };
            serde_json::to_string(&req).expect("request serializes")
        })
        .collect();

    let server_workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let mut runs = Vec::new();
    let mut warm_speedup = 0.0;
    for &client_threads in &[1usize, 4, 8] {
        // Fresh server per thread count so the cold phase is really cold.
        let state = Arc::new(ServerState::new(
            model.clone(),
            ServeConfig {
                workers: server_workers,
                ..ServeConfig::default()
            },
        ));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || serve(state, listener))
        };

        let cold = run_phase(addr, partition(&cold_requests, client_threads));
        let mut warm_requests = Vec::with_capacity(cold_requests.len() * warm_iters);
        for _ in 0..warm_iters {
            warm_requests.extend(cold_requests.iter().cloned());
        }
        let warm = run_phase(addr, partition(&warm_requests, client_threads));

        let snap = state.epoch().base_cache.snapshot();
        assert_eq!(
            snap.misses,
            prefixes.len() as u64,
            "every prefix simulated exactly once"
        );
        eprintln!(
            "# {client_threads} client(s): cold {:.0} qps (p99 {:.0}us), warm {:.0} qps (p99 {:.0}us)",
            cold.qps, cold.p99_us, warm.qps, warm.p99_us
        );
        if client_threads == 1 {
            warm_speedup = cold.mean_us / warm.mean_us.max(1e-9);
        }

        drive(addr, &[r#"{"type":"shutdown"}"#.to_string()]);
        server
            .join()
            .expect("server thread")
            .expect("server drained cleanly");
        runs.push(Run {
            client_threads,
            cold,
            warm,
        });
    }

    let record = Record {
        scale: scale_name,
        seed,
        env: EnvInfo::probe(),
        prefixes: prefixes.len(),
        observers: observers.len(),
        server_workers,
        warm_iters,
        runs,
        warm_speedup,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    quasar_core::persist::atomic_write_bytes(&out, json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!("wrote {out} (warm speedup {warm_speedup:.1}x)");
    if warm_speedup < 10.0 {
        eprintln!("FAIL: warm cache speedup {warm_speedup:.1}x below the 10x acceptance bar");
        std::process::exit(1)
    }
}
