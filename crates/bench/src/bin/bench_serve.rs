//! `bench_serve` — measures sharded `quasar-serve` query throughput over
//! real TCP with real client *processes*, and records the result as JSON.
//!
//! Usage:
//!   `bench_serve [--scale tiny|small|medium|large] [--seed N] [--out FILE]
//!                [--warm-iters N]`
//!
//! The old single-server, threads-only harness had a contention blind
//! spot: client threads share one allocator, one scheduler arena, and
//! one runtime with the in-process server, so server-side lock
//! contention could hide behind client-side noise. This harness drives
//! each cell of a `shards × client_procs` matrix ({1, 2, 4} shards ×
//! {1, 4} client processes) against a fresh in-process sharded server:
//!
//! * **cold** — every prefix predicted exactly once across the client
//!   fleet (each request pays a full steady-state simulation),
//! * **warm** — `--warm-iters` further passes over the same prefixes
//!   (every request is answered from the owning shard's cache).
//!
//! Each client process is this same binary re-executed in a hidden
//! `--client-worker` mode: it takes a strided slice of the request
//! file, drives it over one TCP connection, and prints its latencies as
//! JSON on stdout.
//!
//! After the measured phases, every cell answers the full request list
//! once more over a single connection; the FNV-1a hash of those reply
//! bytes is recorded per cell, and the record's `deterministic` flag
//! demands every cell — every shard count, every process count — hashed
//! identically. The headline `warm_speedup` (mean cold / mean warm
//! latency in the 1-shard, 1-process cell) must be ≥ 10x — the same
//! acceptance bar as before.
//!
//! After the matrix, a **self-healing drill** quarantines one shard of a
//! live 4-shard fleet through the same hook the strike counter uses,
//! times the background rebuild to reinstatement (`shard_rebuild_mttr_ms`),
//! and re-hashes the canonical replies: `recovery_deterministic` demands
//! the recovered fleet answers the exact pre-quarantine bytes. The
//! default output file is `BENCH_serve.json`.

use quasar_bench::{train_model, Context, EnvInfo, Scale};
use quasar_core::prelude::*;
use quasar_serve::protocol::Request;
use quasar_serve::server::{serve, ServeConfig};
use quasar_serve::shard::ShardedState;
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

/// Shard counts benchmarked (each gets a fresh server per process count).
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Client process counts driven against each shard count.
const CLIENT_PROCS: [usize; 2] = [1, 4];

/// One phase's client-side measurement, aggregated over all client
/// processes.
#[derive(Debug, Serialize)]
struct Phase {
    requests: usize,
    wall_secs: f64,
    qps: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

/// One (shard count, client process count) cell.
#[derive(Debug, Serialize)]
struct Cell {
    shards: usize,
    client_procs: usize,
    cold: Phase,
    warm: Phase,
    /// FNV-1a over the canonical reply bytes for the full request list,
    /// answered after the measured phases. Identical across every cell
    /// iff sharding and client parallelism never change an answer.
    replies_fnv: String,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    scale: String,
    seed: u64,
    /// Host metadata: true core count, git commit, rustc version.
    env: EnvInfo,
    prefixes: usize,
    observers: usize,
    server_workers: usize,
    warm_iters: usize,
    matrix: Vec<Cell>,
    /// Every cell produced byte-identical canonical replies.
    deterministic: bool,
    /// Mean cold / mean warm latency in the (1 shard, 1 process) cell.
    warm_speedup: f64,
    /// Wall-clock ms from quarantining one shard of a live 4-shard
    /// fleet to its background rebuild reinstating it (mean time to
    /// recovery of the self-healing path).
    shard_rebuild_mttr_ms: f64,
    /// The recovered fleet's canonical replies hashed identically to
    /// the pre-quarantine (and matrix-wide) hash.
    recovery_deterministic: bool,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn phase_stats(mut latencies_us: Vec<f64>, wall_secs: f64) -> Phase {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let requests = latencies_us.len();
    let mean_us = latencies_us.iter().sum::<f64>() / requests.max(1) as f64;
    Phase {
        requests,
        wall_secs,
        qps: requests as f64 / wall_secs.max(1e-9),
        mean_us,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

/// Sends each request in lockstep over one connection, returning the
/// per-request latencies in microseconds.
fn drive(addr: SocketAddr, requests: &[String]) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).expect("disable Nagle");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let mut latencies = Vec::with_capacity(requests.len());
    let mut line = String::new();
    for req in requests {
        line.clear();
        line.push_str(req);
        line.push('\n');
        let t0 = Instant::now();
        writer.write_all(line.as_bytes()).expect("send request");
        reply.clear();
        reader.read_line(&mut reply).expect("read reply");
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(
            !reply.contains(r#""type":"error""#),
            "server error for {req}: {reply}"
        );
    }
    latencies
}

/// FNV-1a over the reply bytes for `requests`, one connection, in order.
fn replies_fnv(addr: SocketAddr, requests: &[String]) -> String {
    let stream = TcpStream::connect(addr).expect("connect for determinism probe");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut reply = String::new();
    for req in requests {
        writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("send probe request");
        reply.clear();
        reader.read_line(&mut reply).expect("read probe reply");
        for &b in reply.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// The hidden per-process client: drives the `--offset`/`--stride`
/// slice of the request file over one connection and prints the
/// latencies (microseconds) as a JSON array on stdout.
fn client_worker(args: &[String]) -> ! {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| {
                eprintln!("bench_serve --client-worker: missing {name}");
                std::process::exit(2)
            })
    };
    let addr: SocketAddr = flag("--addr").parse().unwrap_or_else(|e| {
        eprintln!("bench_serve --client-worker: bad --addr: {e}");
        std::process::exit(2)
    });
    let stride: usize = flag("--stride").parse().unwrap_or(1);
    let offset: usize = flag("--offset").parse().unwrap_or(0);
    let text = std::fs::read_to_string(flag("--requests")).unwrap_or_else(|e| {
        eprintln!("bench_serve --client-worker: cannot read request file: {e}");
        std::process::exit(2)
    });
    let mine: Vec<String> = text
        .lines()
        .enumerate()
        .filter(|(i, _)| i % stride.max(1) == offset)
        .map(|(_, l)| l.to_string())
        .collect();
    let latencies = drive(addr, &mine);
    println!(
        "{}",
        serde_json::to_string(&latencies).expect("latencies serialize")
    );
    std::process::exit(0)
}

/// Runs one phase with `procs` real client processes, each re-executing
/// this binary against its strided slice of `request_file`.
fn run_phase(addr: SocketAddr, request_file: &std::path::Path, procs: usize) -> Phase {
    let exe = std::env::current_exe().expect("own executable path");
    let t0 = Instant::now();
    let children: Vec<_> = (0..procs)
        .map(|offset| {
            Command::new(&exe)
                .arg("--client-worker")
                .args(["--addr", &addr.to_string()])
                .args(["--requests", &request_file.display().to_string()])
                .args(["--stride", &procs.to_string()])
                .args(["--offset", &offset.to_string()])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn client process")
        })
        .collect();
    let mut latencies = Vec::new();
    for child in children {
        let out = child.wait_with_output().expect("client process exit");
        assert!(
            out.status.success(),
            "client process failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("client stdout is UTF-8");
        let slice: Vec<f64> = serde_json::from_str(stdout.trim()).expect("client latencies");
        latencies.extend(slice);
    }
    phase_stats(latencies, t0.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--client-worker") {
        client_worker(&args);
    }
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale_name = flag("--scale").unwrap_or_else(|| "tiny".into());
    let scale = Scale::parse(&scale_name).unwrap_or_else(|| {
        eprintln!("bad --scale {scale_name}");
        std::process::exit(2)
    });
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(2);
    let out = flag("--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let warm_iters: usize = flag("--warm-iters")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    eprintln!("# building context (scale {scale:?}, seed {seed}) ...");
    let ctx = Context::build(scale, seed);
    eprintln!("# training model on the full dataset ...");
    let (model, _) = train_model(&ctx, &ctx.dataset, &RefineConfig::default());

    let prefixes: Vec<String> = model.prefixes().keys().map(|p| p.to_string()).collect();
    let observers: Vec<u32> = ctx
        .dataset
        .routes()
        .iter()
        .map(|r| r.observer_as.0)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    eprintln!(
        "# {} prefixes, {} observer ASes; warm iters {warm_iters}",
        prefixes.len(),
        observers.len()
    );

    // One predict per prefix, observers cycled deterministically. The
    // cold pass sends each exactly once; warm passes repeat the list.
    let cold_requests: Vec<String> = prefixes
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let req = Request::Predict {
                prefix: p.clone(),
                observer: observers[i % observers.len()],
                observed_path: None,
            };
            serde_json::to_string(&req).expect("request serializes")
        })
        .collect();
    let mut warm_requests = Vec::with_capacity(cold_requests.len() * warm_iters);
    for _ in 0..warm_iters {
        warm_requests.extend(cold_requests.iter().cloned());
    }

    // Request files the client processes read their slices from.
    let scratch = std::env::temp_dir().join(format!("quasar-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let cold_file = scratch.join("cold.reqs");
    let warm_file = scratch.join("warm.reqs");
    std::fs::write(&cold_file, cold_requests.join("\n")).expect("write cold requests");
    std::fs::write(&warm_file, warm_requests.join("\n")).expect("write warm requests");

    let server_workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let mut matrix = Vec::new();
    let mut warm_speedup = 0.0;
    for &shards in &SHARD_COUNTS {
        for &client_procs in &CLIENT_PROCS {
            // Fresh fleet per cell so the cold phase is really cold.
            let state = Arc::new(ShardedState::new(
                model.clone(),
                ServeConfig {
                    workers: server_workers,
                    ..ServeConfig::default()
                },
                shards,
            ));
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr");
            let server = {
                let state = Arc::clone(&state);
                std::thread::spawn(move || serve(state, listener))
            };

            let cold = run_phase(addr, &cold_file, client_procs);
            let warm = run_phase(addr, &warm_file, client_procs);
            let fnv = replies_fnv(addr, &cold_requests);

            // Cache sanity: across the fleet, every prefix simulated
            // exactly once, on its owning shard.
            let misses: u64 = (0..state.shards())
                .map(|i| state.epoch_of(i).base_cache.snapshot().misses)
                .sum();
            assert_eq!(
                misses,
                prefixes.len() as u64,
                "every prefix simulated exactly once across the fleet"
            );
            eprintln!(
                "# {shards} shard(s) x {client_procs} proc(s): cold {:.0} qps (p99 {:.0}us), \
                 warm {:.0} qps (p99 {:.0}us)",
                cold.qps, cold.p99_us, warm.qps, warm.p99_us
            );
            if shards == 1 && client_procs == 1 {
                warm_speedup = cold.mean_us / warm.mean_us.max(1e-9);
            }

            drive(addr, &[r#"{"type":"shutdown"}"#.to_string()]);
            server
                .join()
                .expect("server thread")
                .expect("server drained cleanly");
            matrix.push(Cell {
                shards,
                client_procs,
                cold,
                warm,
                replies_fnv: fnv,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let deterministic = matrix
        .iter()
        .all(|c| c.replies_fnv == matrix[0].replies_fnv);

    // Self-healing drill: quarantine one shard of a live 4-shard fleet
    // (the same hook the panic strike counter fires), time the
    // background rebuild to reinstatement, and demand the recovered
    // fleet answers the exact pre-quarantine bytes.
    eprintln!("# quarantining shard 0 of a live 4-shard fleet ...");
    let state = Arc::new(ShardedState::new(
        model.clone(),
        ServeConfig {
            workers: server_workers,
            ..ServeConfig::default()
        },
        4,
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(state, listener))
    };
    let fnv_before = replies_fnv(addr, &cold_requests);
    let t0 = Instant::now();
    assert!(state.quarantine_shard(0), "the drill shard must be healthy");
    while state.shard_state(0) != "healthy" {
        assert!(
            t0.elapsed().as_secs() < 60,
            "shard rebuild did not reinstate within 60s"
        );
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let shard_rebuild_mttr_ms = t0.elapsed().as_secs_f64() * 1e3;
    let fnv_after = replies_fnv(addr, &cold_requests);
    let recovery_deterministic = fnv_after == fnv_before && fnv_before == matrix[0].replies_fnv;
    eprintln!(
        "# shard rebuild MTTR {shard_rebuild_mttr_ms:.1}ms, \
         replies after recovery deterministic: {recovery_deterministic}"
    );
    drive(addr, &[r#"{"type":"shutdown"}"#.to_string()]);
    server
        .join()
        .expect("server thread")
        .expect("server drained cleanly");

    let record = Record {
        scale: scale_name,
        seed,
        env: EnvInfo::probe(),
        prefixes: prefixes.len(),
        observers: observers.len(),
        server_workers,
        warm_iters,
        matrix,
        deterministic,
        warm_speedup,
        shard_rebuild_mttr_ms,
        recovery_deterministic,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    quasar_core::persist::atomic_write_bytes(&out, json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1)
    });
    println!("wrote {out} (warm speedup {warm_speedup:.1}x, deterministic: {deterministic})");
    if !deterministic {
        eprintln!("FAIL: canonical replies differ across matrix cells");
        std::process::exit(1)
    }
    if warm_speedup < 10.0 {
        eprintln!("FAIL: warm cache speedup {warm_speedup:.1}x below the 10x acceptance bar");
        std::process::exit(1)
    }
    if !recovery_deterministic {
        eprintln!("FAIL: replies changed after the quarantine/rebuild drill");
        std::process::exit(1)
    }
}
