//! `speedup_gate` — CI gate over a freshly produced `BENCH_refine.json`.
//!
//! Usage:
//!   `speedup_gate --fresh FILE --baseline FILE [--scale small]
//!                 [--min-speedup 1.1] [--alloc-slack 1.1]`
//!
//! Checks, in order:
//!
//! 1. **Determinism** — every cell of the fresh matrix must report
//!    byte-identical models across thread counts. Always enforced.
//! 2. **Allocation regression** — the fresh 1-thread `alloc_calls` at the
//!    gated scale must not exceed the committed baseline's by more than
//!    `--alloc-slack` (default 1.1 = +10%). Always enforced when the
//!    baseline file has a matching (scale, threads=1) cell.
//! 3. **Parallel speedup** — at the gated scale, 4-thread
//!    `speedup_vs_sequential` must be at least `--min-speedup` (default
//!    1.1) and must not degrade from 2 to 4 threads. Only enforced when
//!    the *fresh run's* host had at least 4 cores; on smaller hosts a
//!    speedup above 1 is physically impossible, so the gate prints a loud
//!    SKIP and exits 0 (the other two checks still apply).
//!
//! Exit status 0 = pass (or justified skip), 1 = any check failed,
//! 2 = usage / unreadable input.

use serde::Deserialize;

/// The subset of `bench_refine`'s record the gate reads. Unknown fields
/// are ignored so the gate tolerates schema growth.
#[derive(Debug, Deserialize)]
struct Record {
    env: Env,
    matrix: Vec<ScaleRow>,
    deterministic: bool,
}

#[derive(Debug, Deserialize)]
struct Env {
    cores: usize,
}

#[derive(Debug, Deserialize)]
struct ScaleRow {
    scale: String,
    deterministic: bool,
    runs: Vec<Run>,
}

#[derive(Debug, Deserialize)]
struct Run {
    threads: usize,
    alloc_calls: u64,
    speedup_vs_sequential: f64,
}

/// Committed baselines may predate the matrix schema; parse leniently and
/// return `None` when no comparable cell exists.
fn load(path: &str) -> Record {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("speedup_gate: cannot read {path}: {e}");
        std::process::exit(2)
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("speedup_gate: cannot parse {path}: {e}");
        std::process::exit(2)
    })
}

fn baseline_alloc_calls(path: &str, scale: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let rec: Record = serde_json::from_str(&text).ok()?;
    rec.matrix
        .iter()
        .find(|row| row.scale == scale)?
        .runs
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.alloc_calls)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let fresh_path = flag("--fresh").unwrap_or_else(|| {
        eprintln!("usage: speedup_gate --fresh FILE --baseline FILE [--scale small] [--min-speedup 1.1] [--alloc-slack 1.1]");
        std::process::exit(2)
    });
    let baseline_path = flag("--baseline").unwrap_or_else(|| "BENCH_refine.json".into());
    let gated_scale = flag("--scale").unwrap_or_else(|| "small".into());
    let min_speedup: f64 = flag("--min-speedup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.1);
    let alloc_slack: f64 = flag("--alloc-slack")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.1);

    let fresh = load(&fresh_path);
    let mut failed = false;

    // 1. Determinism — non-negotiable at every scale and thread count.
    if !fresh.deterministic {
        let bad: Vec<&str> = fresh
            .matrix
            .iter()
            .filter(|row| !row.deterministic)
            .map(|row| row.scale.as_str())
            .collect();
        eprintln!("FAIL: nondeterministic across thread counts at scales {bad:?}");
        failed = true;
    } else {
        println!("ok: deterministic across thread counts at every scale");
    }

    let row = fresh.matrix.iter().find(|row| row.scale == gated_scale);
    let Some(row) = row else {
        eprintln!("FAIL: fresh record has no {gated_scale:?} scale row");
        std::process::exit(1)
    };

    // 2. Allocation regression against the committed baseline.
    let fresh_allocs = row
        .runs
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.alloc_calls);
    match (
        fresh_allocs,
        baseline_alloc_calls(&baseline_path, &gated_scale),
    ) {
        (Some(fresh_allocs), Some(base_allocs)) => {
            let limit = (base_allocs as f64 * alloc_slack) as u64;
            if fresh_allocs > limit {
                eprintln!(
                    "FAIL: {gated_scale} 1-thread alloc_calls {fresh_allocs} exceeds \
                     baseline {base_allocs} by more than {:.0}% (limit {limit})",
                    (alloc_slack - 1.0) * 100.0
                );
                failed = true;
            } else {
                println!(
                    "ok: {gated_scale} 1-thread alloc_calls {fresh_allocs} within \
                     {:.0}% of baseline {base_allocs}",
                    (alloc_slack - 1.0) * 100.0
                );
            }
        }
        (Some(_), None) => {
            println!(
                "SKIP: no comparable (scale={gated_scale}, threads=1) cell in baseline \
                 {baseline_path} — allocation check not applicable"
            );
        }
        (None, _) => {
            eprintln!("FAIL: fresh {gated_scale} row has no 1-thread run");
            failed = true;
        }
    }

    // 3. Parallel speedup — only meaningful with real cores to spend.
    if fresh.env.cores < 4 {
        println!(
            "SKIP: host has {} core(s) (<4) — a >1x 4-thread speedup is physically \
             impossible here; skipping the speedup checks. Run this gate on a \
             multi-core host to enforce them.",
            fresh.env.cores
        );
    } else {
        let speedup_at = |threads: usize| {
            row.runs
                .iter()
                .find(|r| r.threads == threads)
                .map(|r| r.speedup_vs_sequential)
        };
        match (speedup_at(2), speedup_at(4)) {
            (Some(s2), Some(s4)) => {
                if s4 < min_speedup {
                    eprintln!(
                        "FAIL: {gated_scale} 4-thread speedup {s4:.2}x below the \
                         {min_speedup:.2}x bar"
                    );
                    failed = true;
                } else {
                    println!("ok: {gated_scale} 4-thread speedup {s4:.2}x >= {min_speedup:.2}x");
                }
                if s4 < s2 {
                    eprintln!(
                        "FAIL: {gated_scale} speedup degrades from 2 threads \
                         ({s2:.2}x) to 4 ({s4:.2}x)"
                    );
                    failed = true;
                } else {
                    println!(
                        "ok: {gated_scale} speedup monotone 2->4 threads ({s2:.2}x -> {s4:.2}x)"
                    );
                }
            }
            _ => {
                eprintln!("FAIL: fresh {gated_scale} row lacks 2- and/or 4-thread runs");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1)
    }
    println!("speedup_gate: all applicable checks passed");
}
