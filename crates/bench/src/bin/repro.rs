//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!   `repro [--exp ID] [--scale tiny|small|medium|large] [--seed N] [--obs N]`
//!
//! Experiment ids (see DESIGN.md): t0, fig2, t1, spread, t2, degrees,
//! train, pred-op, pred-origin, pred-both, gen, qr, cov, scale, density,
//! atoms, prune, ablate-single, ablate-lp, ablate-rel; comma-separated
//! lists allowed; `all` (default) runs everything except `density`.

use quasar_bench::*;
use quasar_core::prelude::*;

fn main() {
    let mut exp = "all".to_string();
    let mut scale = Scale::Small;
    let mut seed = 20051113u64;
    let mut obs: Option<usize> = None;
    let mut counts: Option<Vec<usize>> = None;
    let mut csv_dir: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                exp = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage("bad --scale"));
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed"));
                i += 2;
            }
            "--obs" => {
                obs = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("bad --obs")),
                );
                i += 2;
            }
            "--counts" => {
                counts = Some(
                    args.get(i + 1)
                        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
                        .unwrap_or_else(|| usage("bad --counts")),
                );
                i += 2;
            }
            "--csv" => {
                csv_dir = Some(
                    args.get(i + 1)
                        .cloned()
                        .unwrap_or_else(|| usage("bad --csv")),
                );
                i += 2;
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }

    eprintln!("# building context (scale {scale:?}, seed {seed}) ...");
    let t0 = std::time::Instant::now();
    let ctx = Context::build_with_obs(scale, seed, obs);
    eprintln!(
        "# context ready in {:.1?}: {} ASes, {} observed routes",
        t0.elapsed(),
        ctx.internet.as_topology.len(),
        ctx.dataset.len()
    );

    let all = exp == "all";
    let wanted: std::collections::BTreeSet<&str> = exp.split(',').collect();
    // `density` re-trains several full models; it is opt-in even under
    // `all`.
    let want = |id: &str| (all && id != "density" && id != "seeds") || wanted.contains(id);

    if want("t0") {
        print_t0(&ctx);
    }
    if want("fig2") {
        print_fig2(&ctx);
        if let Some(dir) = &csv_dir {
            let h = exp_fig2(&ctx);
            let mut csv = String::from("distinct_paths,pairs\n");
            for (k, n) in h.rows() {
                csv.push_str(&format!("{k},{n}\n"));
            }
            write_csv(dir, "fig2.csv", &csv);
        }
    }
    if want("t1") {
        print_t1(&ctx);
        if let Some(dir) = &csv_dir {
            let q = exp_t1(&ctx);
            let mut csv = String::from("percentile,max_paths\n");
            for (pct, v) in q.table1_row() {
                csv.push_str(&format!("{pct},{v}\n"));
            }
            write_csv(dir, "t1.csv", &csv);
        }
    }
    if want("spread") {
        print_spread(&ctx);
    }
    if want("t2") {
        print_t2(&ctx);
    }
    if want("degrees") {
        use quasar_diversity::prelude::DegreeDistribution;
        let d = DegreeDistribution::from_graph(&ctx.dataset.as_graph());
        if let Some(dir) = &csv_dir {
            let mut csv = String::from("degree,ccdf\n");
            for (deg, f) in d.ccdf() {
                csv.push_str(&format!("{deg},{f}\n"));
            }
            write_csv(dir, "degrees.csv", &csv);
        }
        println!("\n== Degrees: AS-graph degree distribution (paper §1 power-law context) ==");
        println!(
            "mean {:.2} | max {} | CCDF log-log slope {:?} (Faloutsos et al. report ~-1.2 for the real AS graph)",
            d.mean(),
            d.max(),
            d.power_law_slope().map(|v| (v * 100.0).round() / 100.0)
        );
    }
    if want("train") || want("qr") || want("cov") || want("pred-op") {
        // One training run shared by the dependent experiments.
        let (training, validation) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
        let (model, train) = train_model(&ctx, &training, &RefineConfig::default());
        if want("train") {
            print_train(&train);
            // §5 mismatch attribution on the held-out half: which ASes
            // carry diversity the training feeds never exposed.
            let diag = diagnose(&model, &validation);
            println!(
                "validation reproduction: {} of {} routes | top offender ASes:",
                diag.matched, diag.routes
            );
            for (asn, n) in diag.top_offenders(5) {
                println!("  {asn:<10} {n} routes");
            }
        }
        if want("pred-op") || want("cov") {
            let refined = evaluate(&model, &validation);
            if want("pred-op") {
                let graph = ctx.dataset.as_graph();
                let base = shortest_path_model(&graph, &ctx.dataset.prefixes());
                let baseline = evaluate(&base, &validation);
                let pred = PredResult {
                    validation_routes: validation.len(),
                    refined: refined.clone(),
                    baseline,
                    train: train.clone(),
                };
                print_pred("E-pred-op (held-out observation points)", &pred);
            }
            if want("cov") {
                print_cov(&refined);
            }
        }
        if want("qr") {
            print_qr(&exp_quasi_router_growth(&model));
        }
    }
    if want("pred-origin") {
        let pred = exp_predict(&ctx, SplitKind::ByOrigin);
        print_pred("E-pred-origin (held-out origin ASes)", &pred);
    }
    if want("gen") {
        let g = exp_generalize(&ctx);
        println!("\n== E-gen (§4.7): per-session MED defaults for unseen prefixes ==");
        println!("defaults installed: {}", g.defaults);
        println!(
            "without: RIB-Out {:.1}% | tie-break {:.1}% | RIB-In {:.1}%",
            100.0 * g.without.counts.rib_out_rate(),
            100.0 * g.without.counts.tie_break_rate(),
            100.0 * g.without.counts.rib_in_rate()
        );
        println!(
            "with   : RIB-Out {:.1}% | tie-break {:.1}% | RIB-In {:.1}%",
            100.0 * g.with.counts.rib_out_rate(),
            100.0 * g.with.counts.tie_break_rate(),
            100.0 * g.with.counts.rib_in_rate()
        );
    }
    if want("pred-both") {
        let pred = exp_predict(&ctx, SplitKind::Combined);
        print_pred("E-pred-both (held-out points x origins)", &pred);
    }
    if want("scale") {
        print_scale(&ctx);
    }
    if want("density") {
        let counts: Vec<usize> = counts.unwrap_or_else(|| match scale {
            Scale::Tiny => vec![5, 10, 20, 40],
            _ => vec![30, 60, 120, 240, 400],
        });
        let pts = exp_density(&ctx, &counts);
        if let Some(dir) = &csv_dir {
            let mut csv =
                String::from("obs_ases,points,training_routes,refined_tie_break,refined_rib_in,baseline_tie_break\n");
            for p in &pts {
                csv.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    p.observation_ases,
                    p.points,
                    p.training_routes,
                    p.refined_tie_break,
                    p.refined_rib_in,
                    p.baseline_tie_break
                ));
            }
            write_csv(dir, "density.csv", &csv);
        }
        println!("\n== E-density: prediction accuracy vs number of vantage points ==");
        println!(
            "{:>8} {:>7} {:>10} {:>16} {:>12} {:>16}",
            "obs-ASes", "points", "train-rts", "refined tiebrk", "RIB-In", "baseline tiebrk"
        );
        for p in pts {
            println!(
                "{:>8} {:>7} {:>10} {:>15.1}% {:>11.1}% {:>15.1}%",
                p.observation_ases,
                p.points,
                p.training_routes,
                100.0 * p.refined_tie_break,
                100.0 * p.refined_rib_in,
                100.0 * p.baseline_tie_break
            );
        }
    }
    if want("seeds") {
        let seeds: Vec<u64> = (1..=7).map(|i| seed.wrapping_add(i)).collect();
        let r = exp_seed_sensitivity(scale, &seeds);
        println!("\n== E-seeds: headline robustness across generated topologies ==");
        for (s, refined, base) in &r.per_seed {
            println!(
                "seed {s}: refined tie-break {:.1}% | baseline {:.1}%",
                100.0 * refined,
                100.0 * base
            );
        }
        println!(
            "refined {:.1}% +/- {:.1} | baseline {:.1}% +/- {:.1}",
            100.0 * r.refined_mean_std.0,
            100.0 * r.refined_mean_std.1,
            100.0 * r.baseline_mean_std.0,
            100.0 * r.baseline_mean_std.1
        );
    }
    if want("prune") {
        let r = exp_prune(&ctx);
        println!("\n== E-prune: §4.1 single-homed-stub exclusion ==");
        println!("ASes {} -> {} after pruning", r.ases.0, r.ases.1);
        println!(
            "training wall time {:.1}s -> {:.1}s | validation tie-break {:.1}% -> {:.1}% | both converged: {}",
            r.train_secs.0,
            r.train_secs.1,
            100.0 * r.tie_break.0,
            100.0 * r.tie_break.1,
            r.converged
        );
    }
    if want("atoms") {
        let a = exp_atoms(&ctx);
        println!("\n== E-atoms: policy atoms (shared-routing prefix groups) ==");
        println!(
            "prefixes {} -> atoms {} (compression {:.2}x)",
            a.prefixes, a.atoms, a.compression
        );
        println!(
            "refinement wall time: per-prefix {:.1}s vs atoms {:.1}s ({:.2}x speedup) | training-equivalent: {}",
            a.per_prefix_secs,
            a.atom_secs,
            a.per_prefix_secs / a.atom_secs.max(1e-9),
            a.equivalent
        );
    }
    if want("ablate-single") {
        let (train, pred) = exp_ablate_single_router(&ctx);
        println!("\n== A-1router: refinement without quasi-router duplication ==");
        println!(
            "training RIB-Out: {:.1}% (full model: 100%) | quasi-routers {} -> {}",
            100.0 * train.training_eval.counts.rib_out_rate(),
            train.quasi_routers.0,
            train.quasi_routers.1
        );
        println!(
            "validation tie-break match: {:.1}% (vs {:.1}% baseline)",
            100.0 * pred.refined.counts.tie_break_rate(),
            100.0 * pred.baseline.counts.tie_break_rate()
        );
    }
    if want("ablate-lp") {
        let (train, diverged) = exp_ablate_localpref(&ctx);
        println!("\n== A-lp: local-pref ranking instead of MED (rejected in §4.6) ==");
        println!(
            "prefixes diverged: {diverged} of {} | training RIB-Out: {:.1}%",
            train.prefixes,
            100.0 * train.training_eval.counts.rib_out_rate()
        );
    }
    if want("ablate-rel") {
        let (train, pred) = exp_ablate_relationship_seed(&ctx);
        println!("\n== A-agnostic: relationship-seeded start vs agnostic start ==");
        println!(
            "training converged: {} | training RIB-Out: {:.1}%",
            train.converged,
            100.0 * train.training_eval.counts.rib_out_rate()
        );
        println!(
            "validation: RIB-Out {:.1}%, tie-break {:.1}%, RIB-In {:.1}%",
            100.0 * pred.refined.counts.rib_out_rate(),
            100.0 * pred.refined.counts.tie_break_rate(),
            100.0 * pred.refined.counts.rib_in_rate()
        );
    }
}

/// Writes one CSV artifact, creating the directory as needed.
fn write_csv(dir: &str, name: &str, contents: &str) {
    let path = std::path::Path::new(dir).join(name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match quasar_core::persist::atomic_write_bytes(&path, contents.as_bytes()) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# cannot write {}: {e}", path.display()),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: repro [--exp t0|fig2|t1|spread|t2|degrees|train|pred-op|pred-origin|pred-both|gen|qr|cov|scale|density|seeds|atoms|prune|ablate-single|ablate-lp|ablate-rel|all] [--scale tiny|small|medium|large] [--seed N] [--obs N] [--counts N,N,...] [--csv DIR]"
    );
    std::process::exit(2)
}

fn print_t0(ctx: &Context) {
    let s = exp_t0(ctx);
    println!("\n== T0: dataset summary (paper §3.1) ==");
    println!(
        "routes {} | distinct AS-paths {} | AS pairs {}",
        s.routes, s.distinct_paths, s.as_pairs
    );
    println!(
        "observation points {} in {} ASes",
        s.observation_points, s.observer_ases
    );
    println!("AS graph: {} nodes, {} edges", s.ases, s.edges);
    println!(
        "level-1 clique ({}): {:?}",
        s.level1.len(),
        s.level1.iter().map(|a| a.0).collect::<Vec<_>>()
    );
    println!("level-2 {} | other {}", s.level2, s.other);
    println!(
        "transit {} | single-homed stubs {} | multi-homed stubs {}",
        s.transit, s.single_homed_stubs, s.multi_homed_stubs
    );
    println!(
        "pruned graph: {} nodes, {} edges  (paper: 14,563 / 52,288)",
        s.pruned_nodes, s.pruned_edges
    );
}

fn print_fig2(ctx: &Context) {
    let h = exp_fig2(ctx);
    println!("\n== Figure 2: #distinct AS-paths per (origin, observer) AS pair ==");
    println!("{:>8} {:>10}", "paths", "pairs");
    for (k, n) in h.rows() {
        if n > 0 {
            println!("{k:>8} {n:>10}");
        }
    }
    println!(
        "pairs with >1 path : {:.1}%   (paper: >30%)",
        100.0 * h.fraction_with_more_than(1)
    );
    println!(
        "pairs with >10 paths: {}   (paper: >5,000 at full scale)",
        h.pairs_with_more_than(10)
    );
}

fn print_t1(ctx: &Context) {
    let q = exp_t1(ctx);
    println!("\n== Table 1: max #unique AS-paths received per AS ==");
    print!("percentile :");
    for (pct, _) in q.table1_row() {
        print!(" {pct:>4}");
    }
    println!();
    print!("max paths  :");
    for (_, v) in q.table1_row() {
        print!(" {v:>4}");
    }
    println!();
    println!(
        "ASes receiving >=2 for some prefix: {:.1}% (paper: >50%) | >=5: {:.1}% (paper: ~10%) | >=10: {:.1}% (paper: ~2%)",
        100.0 * q.fraction_at_least(2),
        100.0 * q.fraction_at_least(5),
        100.0 * q.fraction_at_least(10)
    );
}

fn print_spread(ctx: &Context) {
    let s = exp_prefix_spread(ctx);
    println!("\n== §3.2: prefixes per AS-path ==");
    println!(
        "single-prefix paths {:.1}% (paper: <50%) | busiest path {} prefixes | log-log slope {:?}",
        100.0 * s.single_prefix_fraction(),
        s.max_prefixes(),
        s.log_log_slope().map(|v| (v * 100.0).round() / 100.0)
    );
}

fn print_t2(ctx: &Context) {
    let t = exp_t2(ctx);
    println!("\n== Table 2: single-router-per-AS baselines ==");
    println!(
        "{:<28} {:>14} {:>20}",
        "", "Shortest Path", "Customer/Peering"
    );
    let row = |label: &str, a: f64, b: f64| {
        println!("{label:<28} {:>13.1}% {:>19.1}%", 100.0 * a, 100.0 * b);
    };
    row(
        "AS-paths which agree",
        t.shortest_path.agree,
        t.relationships.agree,
    );
    row(
        "  disagree",
        t.shortest_path.disagree(),
        t.relationships.disagree(),
    );
    row(
        "  .. path not available",
        t.shortest_path.not_available,
        t.relationships.not_available,
    );
    row(
        "  .. shorter path chosen",
        t.shortest_path.shorter_exists,
        t.relationships.shorter_exists,
    );
    row(
        "  .. lowest neighbor id",
        t.shortest_path.tie_break,
        t.relationships.tie_break,
    );
    row(
        "  .. other policy step",
        t.shortest_path.other,
        t.relationships.other,
    );
    println!(
        "(paper: agree 23.5% / 12.5%; not-available 49.4% / 54.5%; shorter 4.7% / 5.7%; tie-break 22.2% / 27.3%)"
    );
    let (cp, pp, sib) = t.inferred_counts;
    println!(
        "inferred relationships: {cp} customer-provider, {pp} peer, {sib} sibling | accuracy vs ground truth {:.1}%",
        100.0 * t.inference_accuracy
    );
}

fn print_train(t: &TrainResult) {
    println!("\n== E-train: refinement against the training set ==");
    println!(
        "training routes {} over {} prefixes | converged: {}",
        t.training_routes, t.prefixes, t.converged
    );
    println!(
        "iterations: total {} / max-per-prefix {} | quasi-routers {} -> {} | rules {}",
        t.iterations.0, t.iterations.1, t.quasi_routers.0, t.quasi_routers.1, t.rules
    );
    println!(
        "training reproduction: {:.1}% RIB-Out (paper: exact match by construction)",
        100.0 * t.training_eval.counts.rib_out_rate()
    );
}

fn print_pred(title: &str, p: &PredResult) {
    println!("\n== {title} ==");
    println!("validation routes: {}", p.validation_routes);
    let line = |label: &str, ev: &Evaluation| {
        println!(
            "{label:<16} RIB-Out {:>5.1}% | +tie-break {:>5.1}% | RIB-In bound {:>5.1}%",
            100.0 * ev.counts.rib_out_rate(),
            100.0 * ev.counts.tie_break_rate(),
            100.0 * ev.counts.rib_in_rate()
        );
    };
    line("refined model:", &p.refined);
    line("baseline:", &p.baseline);
    println!("(paper: >80% of test cases matched down to the final BGP tie break)");
}

fn print_cov(ev: &Evaluation) {
    println!("\n== E-cov: per-prefix RIB-Out coverage of unique AS-paths ==");
    let c = ev.coverage;
    let pct = |n: usize| 100.0 * n as f64 / c.prefixes.max(1) as f64;
    println!(
        "prefixes {} | >=50% matched: {:.1}% | >=90%: {:.1}% | 100%: {:.1}%",
        c.prefixes,
        pct(c.at_least_50),
        pct(c.at_least_90),
        pct(c.full)
    );
}

fn print_qr(g: &QuasiRouterGrowth) {
    println!("\n== E-qr: quasi-routers per AS after refinement ==");
    println!("{:>14} {:>8}", "quasi-routers", "ASes");
    for (k, n) in &g.histogram {
        println!("{k:>14} {n:>8}");
    }
    println!("max {} | mean {:.2}", g.max, g.mean);
}

fn print_scale(ctx: &Context) {
    println!("\n== E-scale: per-prefix simulation cost on the initial model ==");
    let p = measure_scale(&ctx.dataset, 200);
    println!(
        "{} ASes | {} routers | {} sessions | {} prefixes sampled",
        p.ases, p.routers, p.sessions, p.prefixes
    );
    println!(
        "mean {:.0} BGP messages, {:.0} us per prefix simulation",
        p.mean_messages, p.mean_micros
    );
    println!("(paper/C-BGP 2006: 16.5k routers, 2-45 min per prefix, 200MB-2GB)");
}
