//! The experiment functions, one per table/figure (DESIGN.md index).

use crate::Context;
use quasar_core::prelude::*;
use quasar_diversity::prelude::*;
use quasar_topology::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;

/// Split strategy for the prediction experiments (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Hold out observation points.
    ByPoint,
    /// Hold out originating ASes (prefixes).
    ByOrigin,
    /// Hold out both (mixed quadrants discarded).
    Combined,
}

impl SplitKind {
    /// Applies the split (training fraction 0.5, seeded).
    pub fn split(self, dataset: &Dataset, seed: u64) -> (Dataset, Dataset) {
        match self {
            SplitKind::ByPoint => dataset.split_by_point(0.5, seed),
            SplitKind::ByOrigin => dataset.split_by_origin(0.5, seed),
            SplitKind::Combined => dataset.split_combined(0.5, seed),
        }
    }
}

/// T0: the §3.1 dataset summary.
pub fn exp_t0(ctx: &Context) -> DatasetSummary {
    summarize(&ctx.dataset, &ctx.tier1_seeds())
}

/// Figure 2: distinct AS-paths per AS pair.
pub fn exp_fig2(ctx: &Context) -> PathDiversityHistogram {
    PathDiversityHistogram::from_dataset(&ctx.dataset)
}

/// Table 1: max received-path diversity quantiles.
pub fn exp_t1(ctx: &Context) -> DiversityQuantiles {
    DiversityQuantiles::from_dataset(&ctx.dataset)
}

/// §3.2 prefix-spread follow-on numbers.
pub fn exp_prefix_spread(ctx: &Context) -> PrefixSpread {
    PrefixSpread::from_dataset(&ctx.dataset)
}

/// Table 2 output: both baseline rows plus relationship-inference accuracy
/// against the generator's ground truth (a measurement the paper could
/// never make).
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// Shortest-path baseline row.
    pub shortest_path: Table2Row,
    /// Relationship-policy baseline row.
    pub relationships: Table2Row,
    /// Inferred relationship counts `(customer-provider, peer, sibling)`.
    pub inferred_counts: (usize, usize, usize),
    /// Fraction of classified edges whose inferred class matches ground
    /// truth.
    pub inference_accuracy: f64,
}

/// Table 2: single-router baselines.
pub fn exp_t2(ctx: &Context) -> Table2 {
    let graph = ctx.dataset.as_graph();
    let prefixes = ctx.dataset.prefixes();
    let paths = ctx.dataset.paths();

    let sp = shortest_path_model(&graph, &prefixes);
    let shortest_path = table2_row(&sp, &ctx.dataset);

    let level1 = tier1_clique(&graph, &ctx.tier1_seeds());
    let rels = infer_relationships(&graph, &paths, &level1, &InferenceConfig::default());
    let rel_model = relationship_model(&graph, &prefixes, &rels);
    let relationships = table2_row(&rel_model, &ctx.dataset);

    // Score inference against the generator's ground truth.
    let truth = ctx.internet.as_topology.ground_truth_relationships();
    let mut correct = 0usize;
    let mut scored = 0usize;
    for (&(a, b), inferred) in rels.iter() {
        if let Some(true_rel) = truth.get(a, b) {
            scored += 1;
            let ok = match (inferred, true_rel) {
                (
                    Relationship::CustomerProvider { provider: p1, .. },
                    Relationship::CustomerProvider { provider: p2, .. },
                ) => *p1 == p2,
                (Relationship::PeerPeer, Relationship::PeerPeer)
                | (Relationship::Sibling, Relationship::Sibling)
                // The paper folds siblings into peerings (fn. 2).
                | (Relationship::Sibling, Relationship::PeerPeer)
                | (Relationship::PeerPeer, Relationship::Sibling) => true,
                _ => false,
            };
            if ok {
                correct += 1;
            }
        }
    }
    Table2 {
        shortest_path,
        relationships,
        inferred_counts: rels.counts(),
        inference_accuracy: if scored == 0 {
            0.0
        } else {
            correct as f64 / scored as f64
        },
    }
}

/// Training result: refinement statistics plus the training-set evaluation
/// (which must be a perfect RIB-Out reproduction when converged).
#[derive(Debug, Clone, Serialize)]
pub struct TrainResult {
    /// Training routes.
    pub training_routes: usize,
    /// Refinement converged on every prefix.
    pub converged: bool,
    /// Prefixes refined.
    pub prefixes: usize,
    /// Total / max iterations.
    pub iterations: (usize, usize),
    /// Quasi-routers before/after.
    pub quasi_routers: (usize, usize),
    /// Policy rules installed.
    pub rules: usize,
    /// Training-set evaluation.
    pub training_eval: Evaluation,
}

/// Trains a model on `training` (graph from the full dataset, §4.5).
pub fn train_model(
    ctx: &Context,
    training: &Dataset,
    cfg: &RefineConfig,
) -> (AsRoutingModel, TrainResult) {
    let graph = ctx.dataset.as_graph();
    let mut model = AsRoutingModel::initial(&graph, &ctx.dataset.prefixes());
    let before = model.stats().quasi_routers;
    let report = refine(&mut model, training, cfg).expect("refinement simulations run");
    let stats = model.stats();
    let training_eval = evaluate(&model, training);
    let result = TrainResult {
        training_routes: training.len(),
        converged: report.converged(),
        prefixes: report.prefixes.len(),
        iterations: (report.total_iterations(), report.max_iterations()),
        quasi_routers: (before, stats.quasi_routers),
        rules: stats.policy_rules,
        training_eval,
    };
    (model, result)
}

/// E-train: refinement to exact training reproduction.
pub fn exp_train(ctx: &Context) -> TrainResult {
    let (training, _) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
    train_model(ctx, &training, &RefineConfig::default()).1
}

/// Prediction result on a held-out validation set, with the §3.3 baseline
/// alongside for the same validation routes.
#[derive(Debug, Clone, Serialize)]
pub struct PredResult {
    /// Validation routes evaluated.
    pub validation_routes: usize,
    /// Refined-model evaluation.
    pub refined: Evaluation,
    /// Shortest-path baseline evaluation on the same validation set.
    pub baseline: Evaluation,
    /// Training summary for reference.
    pub train: TrainResult,
}

/// E-pred-*: train on one side of a split, predict the other.
pub fn exp_predict(ctx: &Context, kind: SplitKind) -> PredResult {
    let (training, validation) = kind.split(&ctx.dataset, ctx.seed);
    let (model, train) = train_model(ctx, &training, &RefineConfig::default());
    let refined = evaluate(&model, &validation);

    let graph = ctx.dataset.as_graph();
    let base = shortest_path_model(&graph, &ctx.dataset.prefixes());
    let baseline = evaluate(&base, &validation);

    PredResult {
        validation_routes: validation.len(),
        refined,
        baseline,
        train,
    }
}

/// E-qr: quasi-router count distribution after training.
#[derive(Debug, Clone, Serialize)]
pub struct QuasiRouterGrowth {
    /// Histogram: quasi-routers-per-AS -> number of ASes.
    pub histogram: BTreeMap<usize, usize>,
    /// Largest AS (by quasi-routers).
    pub max: usize,
    /// Mean quasi-routers per AS.
    pub mean: f64,
}

/// E-qr: measures how many quasi-routers the model needed.
pub fn exp_quasi_router_growth(model: &AsRoutingModel) -> QuasiRouterGrowth {
    let counts = model.quasi_router_counts();
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for &c in counts.values() {
        *histogram.entry(c).or_default() += 1;
    }
    let total: usize = counts.values().sum();
    QuasiRouterGrowth {
        max: counts.values().copied().max().unwrap_or(0),
        mean: if counts.is_empty() {
            0.0
        } else {
            total as f64 / counts.len() as f64
        },
        histogram,
    }
}

/// A-1router: refinement with quasi-router duplication disabled.
pub fn exp_ablate_single_router(ctx: &Context) -> (TrainResult, PredResult) {
    let (training, validation) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
    let cfg = RefineConfig {
        allow_duplication: false,
        ..RefineConfig::default()
    };
    let (model, train) = train_model(ctx, &training, &cfg);
    let refined = evaluate(&model, &validation);
    let graph = ctx.dataset.as_graph();
    let base = shortest_path_model(&graph, &ctx.dataset.prefixes());
    let baseline = evaluate(&base, &validation);
    (
        train.clone(),
        PredResult {
            validation_routes: validation.len(),
            refined,
            baseline,
            train,
        },
    )
}

/// A-lp: refinement ranking with local-pref instead of MED (the design the
/// paper rejected). Returns the train result plus the number of prefixes
/// whose propagation diverged.
pub fn exp_ablate_localpref(ctx: &Context) -> (TrainResult, usize) {
    let (training, _) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
    let cfg = RefineConfig {
        ranking: RankingAttr::LocalPref,
        ..RefineConfig::default()
    };
    let graph = ctx.dataset.as_graph();
    let mut model = AsRoutingModel::initial(&graph, &ctx.dataset.prefixes());
    let before = model.stats().quasi_routers;
    let report = refine(&mut model, &training, &cfg).expect("only divergence is tolerated");
    let diverged = report.prefixes.iter().filter(|p| p.diverged).count();
    let stats = model.stats();
    let training_eval = evaluate(&model, &training);
    (
        TrainResult {
            training_routes: training.len(),
            converged: report.converged(),
            prefixes: report.prefixes.len(),
            iterations: (report.total_iterations(), report.max_iterations()),
            quasi_routers: (before, stats.quasi_routers),
            rules: stats.policy_rules,
            training_eval,
        },
        diverged,
    )
}

/// A-agnostic: seed the model with inferred-relationship policies before
/// refining, vs. the paper's agnostic start.
pub fn exp_ablate_relationship_seed(ctx: &Context) -> (TrainResult, PredResult) {
    let (training, validation) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
    let graph = ctx.dataset.as_graph();
    let paths = ctx.dataset.paths();
    let level1 = tier1_clique(&graph, &ctx.tier1_seeds());
    let rels = infer_relationships(&graph, &paths, &level1, &InferenceConfig::default());

    let mut model = relationship_model(&graph, &ctx.dataset.prefixes(), &rels);
    let before = model.stats().quasi_routers;
    let report = refine(&mut model, &training, &RefineConfig::default()).expect("refinement runs");
    let stats = model.stats();
    let training_eval = evaluate(&model, &training);
    let train = TrainResult {
        training_routes: training.len(),
        converged: report.converged(),
        prefixes: report.prefixes.len(),
        iterations: (report.total_iterations(), report.max_iterations()),
        quasi_routers: (before, stats.quasi_routers),
        rules: stats.policy_rules,
        training_eval,
    };
    let refined = evaluate(&model, &validation);
    let base = shortest_path_model(&graph, &ctx.dataset.prefixes());
    let baseline = evaluate(&base, &validation);
    (
        train.clone(),
        PredResult {
            validation_routes: validation.len(),
            refined,
            baseline,
            train,
        },
    )
}

/// E-gen (§4.7 extension): origin-split prediction with and without
/// generalizing the per-prefix MED rankings into per-session defaults.
#[derive(Debug, Clone, Serialize)]
pub struct GeneralizationResult {
    /// Plain refined model on held-out origins.
    pub without: Evaluation,
    /// After `generalize_med_preferences`.
    pub with: Evaluation,
    /// Defaults installed.
    pub defaults: usize,
}

/// Runs the §4.7 generalization experiment.
pub fn exp_generalize(ctx: &Context) -> GeneralizationResult {
    let (training, validation) = SplitKind::ByOrigin.split(&ctx.dataset, ctx.seed);
    let (mut model, _) = train_model(ctx, &training, &RefineConfig::default());
    let without = evaluate(&model, &validation);
    let defaults = model.generalize_med_preferences();
    let with = evaluate(&model, &validation);
    GeneralizationResult {
        without,
        with,
        defaults,
    }
}

/// E-atoms: atom-accelerated refinement vs per-prefix refinement.
#[derive(Debug, Clone, Serialize)]
pub struct AtomsResult {
    /// Training prefixes.
    pub prefixes: usize,
    /// Policy atoms found.
    pub atoms: usize,
    /// Prefixes per atom.
    pub compression: f64,
    /// Wall seconds of per-prefix refinement.
    pub per_prefix_secs: f64,
    /// Wall seconds of atom refinement.
    pub atom_secs: f64,
    /// Training evaluations identical?
    pub equivalent: bool,
}

/// Runs both refinement strategies on the same training split and compares
/// cost and outcome.
pub fn exp_atoms(ctx: &Context) -> AtomsResult {
    use quasar_core::atoms::refine_with_atoms;
    use std::time::Instant;
    let (training, _) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
    let graph = ctx.dataset.as_graph();

    let t0 = Instant::now();
    let mut per_prefix = AsRoutingModel::initial(&graph, &ctx.dataset.prefixes());
    refine(&mut per_prefix, &training, &RefineConfig::default()).expect("refinement runs");
    let per_prefix_secs = t0.elapsed().as_secs_f64();
    let ev_pp = evaluate(&per_prefix, &training);

    let t1 = Instant::now();
    let mut atomized = AsRoutingModel::initial(&graph, &ctx.dataset.prefixes());
    let (_, atoms) = refine_with_atoms(&mut atomized, &training, &RefineConfig::default())
        .expect("refinement runs");
    let atom_secs = t1.elapsed().as_secs_f64();
    let ev_at = evaluate(&atomized, &training);

    AtomsResult {
        prefixes: training.prefixes().len(),
        atoms: atoms.len(),
        compression: atoms.compression(),
        per_prefix_secs,
        atom_secs,
        equivalent: ev_pp.counts == ev_at.counts,
    }
}

/// E-prune: the paper's §4.1 stub exclusion — model quality and cost with
/// and without pruning single-homed stubs (path info transferred to the
/// provider's prefix).
#[derive(Debug, Clone, Serialize)]
pub struct PruneResultExp {
    /// ASes before/after pruning.
    pub ases: (usize, usize),
    /// Wall seconds to train, unpruned vs pruned.
    pub train_secs: (f64, f64),
    /// Validation tie-break rates, unpruned vs pruned.
    pub tie_break: (f64, f64),
    /// Both trainings converged.
    pub converged: bool,
}

/// Trains and evaluates with and without §4.1 stub pruning.
pub fn exp_prune(ctx: &Context) -> PruneResultExp {
    use quasar_core::prep::prune_stub_ases;
    use std::time::Instant;

    // Unpruned pipeline.
    let (training, validation) = SplitKind::ByPoint.split(&ctx.dataset, ctx.seed);
    let t0 = Instant::now();
    let (model_u, train_u) = train_model(ctx, &training, &RefineConfig::default());
    let secs_u = t0.elapsed().as_secs_f64();
    let ev_u = evaluate(&model_u, &validation);

    // Pruned pipeline: prune the FULL dataset (graph and paths), re-split
    // with the same seed, train, and evaluate on the pruned validation
    // routes (stub announcements now attributed to their providers).
    let pruned = prune_stub_ases(&ctx.dataset, &ctx.tier1_seeds());
    let (ptraining, pvalidation) = SplitKind::ByPoint.split(&pruned.dataset, ctx.seed);
    let t1 = Instant::now();
    let mut model_p = AsRoutingModel::initial(&pruned.graph, &pruned.dataset.prefixes());
    let report_p =
        refine(&mut model_p, &ptraining, &RefineConfig::default()).expect("refinement runs");
    let secs_p = t1.elapsed().as_secs_f64();
    let ev_p = evaluate(&model_p, &pvalidation);

    PruneResultExp {
        ases: (ctx.dataset.as_graph().num_nodes(), pruned.graph.num_nodes()),
        train_secs: (secs_u, secs_p),
        tie_break: (ev_u.counts.tie_break_rate(), ev_p.counts.tie_break_rate()),
        converged: train_u.converged && report_p.converged(),
    }
}

/// E-seeds: robustness of the headline result across independently
/// generated topologies.
#[derive(Debug, Clone, Serialize)]
pub struct SeedSensitivity {
    /// Per seed: (refined tie-break, baseline tie-break).
    pub per_seed: Vec<(u64, f64, f64)>,
    /// Mean and sample standard deviation of the refined tie-break rate.
    pub refined_mean_std: (f64, f64),
    /// Mean and sample standard deviation of the baseline tie-break rate.
    pub baseline_mean_std: (f64, f64),
}

/// Repeats the observation-point-split prediction across `seeds`,
/// regenerating the Internet each time, and reports the spread. The
/// conclusions must not hinge on one lucky topology.
pub fn exp_seed_sensitivity(scale: crate::Scale, seeds: &[u64]) -> SeedSensitivity {
    let mut per_seed = Vec::new();
    for &seed in seeds {
        let ctx = Context::build(scale, seed);
        let pred = exp_predict(&ctx, SplitKind::ByPoint);
        per_seed.push((
            seed,
            pred.refined.counts.tie_break_rate(),
            pred.baseline.counts.tie_break_rate(),
        ));
    }
    let stats = |vals: Vec<f64>| -> (f64, f64) {
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        (mean, var.sqrt())
    };
    SeedSensitivity {
        refined_mean_std: stats(per_seed.iter().map(|&(_, r, _)| r).collect()),
        baseline_mean_std: stats(per_seed.iter().map(|&(_, _, b)| b).collect()),
        per_seed,
    }
}

/// One point of the observation-density sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DensityPoint {
    /// Observation ASes requested.
    pub observation_ases: usize,
    /// Feeds actually sampled.
    pub points: usize,
    /// Training routes.
    pub training_routes: usize,
    /// Validation tie-break match rate of the refined model.
    pub refined_tie_break: f64,
    /// Validation RIB-In upper bound.
    pub refined_rib_in: f64,
    /// Baseline tie-break rate.
    pub baseline_tie_break: f64,
}

/// E-density: prediction accuracy as a function of vantage-point count —
/// quantifies the paper's "exploiting a large number of observation
/// points" premise. Same topology seed throughout; only the feed sampling
/// varies.
pub fn exp_density(ctx: &Context, counts: &[usize]) -> Vec<DensityPoint> {
    use quasar_core::observed::ObservedRoute;
    use quasar_netgen::observe::SyntheticInternet;

    counts
        .iter()
        .map(|&n| {
            let cfg = quasar_netgen::config::NetGenConfig {
                num_observation_ases: n,
                ..ctx.scale.config(ctx.seed)
            };
            let internet = SyntheticInternet::generate(cfg);
            let dataset = Dataset::new(internet.observations.iter().map(|o| ObservedRoute {
                point: o.point,
                observer_as: o.observer_as,
                prefix: o.prefix,
                as_path: o.as_path.clone(),
            }));
            let (training, validation) = dataset.split_by_point(0.5, ctx.seed);

            let graph = dataset.as_graph();
            let mut model = AsRoutingModel::initial(&graph, &dataset.prefixes());
            refine(&mut model, &training, &RefineConfig::default()).expect("refinement runs");
            let refined = evaluate(&model, &validation);
            let base = shortest_path_model(&graph, &dataset.prefixes());
            let baseline = evaluate(&base, &validation);

            DensityPoint {
                observation_ases: n,
                points: internet.observation_points.len(),
                training_routes: training.len(),
                refined_tie_break: refined.counts.tie_break_rate(),
                refined_rib_in: refined.counts.rib_in_rate(),
                baseline_tie_break: baseline.counts.tie_break_rate(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn ctx() -> Context {
        Context::build(Scale::Tiny, 11)
    }

    #[test]
    fn t0_summary_consistent() {
        let c = ctx();
        let s = exp_t0(&c);
        assert_eq!(s.routes, c.dataset.len());
        assert!(s.pruned_nodes <= s.ases);
    }

    #[test]
    fn fig2_has_diverse_pairs() {
        let h = exp_fig2(&ctx());
        assert!(h.fraction_with_more_than(1) > 0.0);
    }

    #[test]
    fn t2_baselines_bounded() {
        let t = exp_t2(&ctx());
        assert!(t.shortest_path.agree > 0.0 && t.shortest_path.agree < 1.0);
        assert!(t.relationships.agree > 0.0 && t.relationships.agree < 1.0);
        assert!(
            t.inference_accuracy > 0.5,
            "accuracy {}",
            t.inference_accuracy
        );
    }

    #[test]
    fn train_converges_and_reproduces() {
        let t = exp_train(&ctx());
        assert!(t.converged);
        assert_eq!(t.training_eval.counts.rib_out, t.training_eval.counts.total);
    }

    #[test]
    fn prediction_beats_baseline() {
        let p = exp_predict(&ctx(), SplitKind::ByPoint);
        // Strictly better than the single-router baseline, and well above
        // chance; the paper's >80 % needs vantage density the tiny
        // configuration does not have (see E-density).
        assert!(p.refined.counts.tie_break_rate() > p.baseline.counts.tie_break_rate());
        assert!(p.refined.counts.tie_break_rate() > 0.7);
    }

    #[test]
    fn single_router_ablation_caps_training_match() {
        let (train, _) = exp_ablate_single_router(&ctx());
        // Without duplication the training set cannot be fully reproduced
        // whenever genuine concurrent-path diversity exists.
        assert!(
            train.training_eval.counts.rib_out < train.training_eval.counts.total,
            "ablation unexpectedly perfect"
        );
    }
}
