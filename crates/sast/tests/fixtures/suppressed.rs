//! Suppression syntax coverage. A justified `relaxed-ok` and a generic
//! `allow QS0005` silence their findings entirely; a *bare* `relaxed-ok`
//! (no reason) downgrades to a warning instead of passing.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn justified(flag: &AtomicU64) -> u64 {
    // sast: relaxed-ok advisory snapshot; a stale read only delays logging
    flag.load(Ordering::Relaxed)
}

pub fn bare(flag: &AtomicU64) -> u64 {
    // sast: relaxed-ok
    flag.load(Ordering::Relaxed)
}

pub fn overridden() {
    // sast: allow QS0005 fixture exercises the generic suppression path
    std::process::exit(3);
}
