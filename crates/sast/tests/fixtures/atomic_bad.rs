//! SEEDED VIOLATION — QS0002 atomic-ordering audit.
//!
//! `flag` is not an allowlisted metrics counter and the `Relaxed` load
//! carries no `// sast: relaxed-ok <reason>` justification.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn peek(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::Relaxed)
}
