//! SEEDED VIOLATION — QS0004 protocol exhaustiveness.
//!
//! `Request::Pong` is declared but the loop never closes: no dispatch
//! arm handles it, no `Response::Pong` exists, and `Request::kind()`
//! never maps it onto a metrics bucket — three QS0004 errors.

pub enum Request {
    Ping,
    Pong,
}

pub enum Response {
    Ping,
}

pub enum RequestKind {
    Ping,
}

impl Request {
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Ping => RequestKind::Ping,
            _ => RequestKind::Ping,
        }
    }
}

pub fn dispatch(req: &Request) -> Response {
    match req {
        Request::Ping => Response::Ping,
        _ => unreachable_reply(),
    }
}

fn render(r: &Response) -> &'static str {
    match r {
        Response::Ping => "ping",
    }
}
