//! SEEDED VIOLATION — QS0006: `println!` in a library crate.

pub fn shout() {
    println!("library crates must not own stdout");
}
