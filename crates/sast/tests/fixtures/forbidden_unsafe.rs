//! SEEDED VIOLATION — QS0007: `unsafe` in library code.

pub fn sketchy(p: *const u8) -> u8 {
    unsafe { *p }
}
