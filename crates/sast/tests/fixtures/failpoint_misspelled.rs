//! SEEDED VIOLATION — QS0003 failpoint registry (misspelled ref).
//!
//! Arms `fixture.oi` — a transposition of the real `fixture.io` site —
//! so the fault this test believes it injects never happens.

fn drill() {
    fail::set("fixture.oi", "always:error");
}
