//! A clean file: every rule must stay silent. Doubles as lexer torture —
//! raw strings with hashes, nested generics, raw identifiers — plus a
//! correct ascending lock acquisition and an allowlisted counter load.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn nested(map: &std::collections::HashMap<String, Vec<Option<Box<[u8; 4]>>>>) -> usize {
    map.len()
}

pub fn raw_text() -> &'static str {
    r##"a "raw" string with # and // sast: decoys inside"##
}

pub fn r#match(r#type: u32) -> u32 {
    r#type + 1
}

pub fn counted(requests: &AtomicU64) -> u64 {
    requests.load(Ordering::Relaxed)
}

struct S;

impl S {
    fn ordered(&self) {
        let a = self.map.lock().unwrap();
        let b = self.inner.lock().unwrap();
        drop(b);
        drop(a);
    }
}
