//! SEEDED VIOLATION — QS0003 failpoint registry (dead site).
//!
//! `fixture.io` is injected here but nothing in the fixture set ever
//! arms it with `fail::set` — dead instrumentation.

pub fn risky() -> bool {
    fail::inject("fixture.io")
}
