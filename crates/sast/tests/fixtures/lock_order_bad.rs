//! SEEDED VIOLATIONS — QS0001 lock-order discipline.
//!
//! This file is never compiled or scanned by the workspace walk
//! (`fixtures/` directories are skipped); the fixture suite feeds it to
//! the analyzer and expects exactly QS0001 to fire, twice.

struct Shard;

impl Shard {
    /// Descending: `inner` (rank 50) is held while `map` (rank 30) is
    /// acquired — the reverse of the declared ascending order.
    fn descending(&self) {
        let big = self.inner.lock().unwrap();
        let small = self.map.lock().unwrap();
        drop(small);
        drop(big);
    }

    /// An undeclared lock class nested under a held guard: the rank
    /// table cannot prove it acyclic, so the nesting itself is an error.
    fn undeclared(&self) {
        let held = self.map.lock().unwrap();
        let rogue = self.mystery.lock().unwrap();
        drop(rogue);
        drop(held);
    }
}
