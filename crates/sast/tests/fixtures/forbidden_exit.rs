//! SEEDED VIOLATION — QS0005: `process::exit` in library code.

pub fn bail() {
    std::process::exit(2);
}
