//! Property tests for the hand-rolled lexer: it must be *total* — any
//! input, including truncated or malformed Rust, lexes without panicking
//! — and its spans must be strictly monotone in byte offset with line
//! and column numbers that never run backwards on a line.

use proptest::prelude::*;
use quasar_sast::lexer::lex;

/// Fragments that compose into valid-ish Rust, biased toward the
/// constructs the lexer special-cases: raw strings, nested generics,
/// raw identifiers, lifetimes, char literals, block comments, markers.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("fn f() { let x = 1; }\n".to_string()),
        Just("let m: HashMap<String, Vec<Option<Box<[u8; 4]>>>> = make();\n".to_string()),
        Just("let s = r#\"raw \"quoted\" text\"#;\n".to_string()),
        Just("let s = r##\"nested # hash\"##;\n".to_string()),
        Just("let b = b\"bytes\\n\";\n".to_string()),
        Just("let r#match = r#type + 1;\n".to_string()),
        Just("fn g<'a>(x: &'a str) -> &'a str { x }\n".to_string()),
        Just("let c = 'x'; let nl = '\\n'; let q = '\\'';\n".to_string()),
        Just("/* outer /* inner */ still comment */\n".to_string()),
        Just("// sast: relaxed-ok a justification line\n".to_string()),
        Just("let f = 1.5e3; let r = 0..10; let t = tup.0;\n".to_string()),
        Just("m.lock().unwrap();\n".to_string()),
        Just("fail::set(\"a.b\", \"always:error\");\n".to_string()),
        // Adversarial shards: unterminated constructs and stray bytes.
        Just("let s = \"unterminated\n".to_string()),
        Just("r#\"never closed\n".to_string()),
        Just("/* never closed\n".to_string()),
        Just("'\n".to_string()),
        Just("\\ $ ` @\n".to_string()),
        "[ -~]{0,40}\n".prop_map(|s| s),
        // Raw byte soup, lossily decoded: exercises multi-byte and
        // replacement characters without ever feeding invalid UTF-8.
        proptest::collection::vec(any::<u8>(), 0..20).prop_map(|b| {
            let mut s = String::from_utf8_lossy(&b).into_owned();
            s.push('\n');
            s
        }),
    ]
}

fn source() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragment(), 0..12).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexing_never_panics_and_spans_are_monotone(src in source()) {
        let lexed = lex(&src);
        let mut prev_byte = None;
        let mut prev_pos = (0u32, 0u32);
        for t in &lexed.tokens {
            if let Some(p) = prev_byte {
                prop_assert!(
                    t.byte > p,
                    "byte offsets must strictly increase: {p} then {} in {src:?}",
                    t.byte
                );
            }
            prev_byte = Some(t.byte);
            prop_assert!(
                (t.line, t.col) > prev_pos || (t.line, t.col) == (1, 1) && prev_pos == (0, 0),
                "line/col must advance: {prev_pos:?} then {:?} in {src:?}",
                (t.line, t.col)
            );
            prev_pos = (t.line, t.col);
            prop_assert!(t.byte < src.len().max(1));
        }
        // Markers are line-sorted as collected.
        let lines: Vec<u32> = lexed.markers.iter().map(|(l, _)| *l).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        prop_assert_eq!(lines, sorted);
    }

    #[test]
    fn lexing_is_deterministic(src in source()) {
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        prop_assert_eq!(a.markers, b.markers);
    }
}
