//! Fixture suite: every known-bad snippet under `tests/fixtures/` fires
//! exactly its rule id, the clean fixture fires nothing, and the
//! suppression markers behave as documented. The fixtures are plain
//! `.rs` files the workspace walker deliberately skips (`fixtures/`
//! directories are out of scope), so the self-clean gate and this suite
//! can never contaminate each other.

use quasar_sast::{analyze, Diagnostic, FileKind, SastReport, Severity, SourceFile};
use std::collections::BTreeSet;

fn errs(report: &SastReport) -> Vec<&Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// Loads a fixture, presenting it to the analyzer under a synthetic
/// workspace path so classification-sensitive rules see the right tier.
fn fx(name: &str, path: &str, kind: FileKind) -> SourceFile {
    let disk = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        path: path.into(),
        kind,
        text: std::fs::read_to_string(&disk)
            .unwrap_or_else(|e| panic!("read fixture {}: {e}", disk.display())),
    }
}

fn lib(name: &str) -> SourceFile {
    fx(name, &format!("crates/fx/src/{name}"), FileKind::Library)
}

fn codes(files: &[SourceFile]) -> BTreeSet<&'static str> {
    analyze(files).fired_codes()
}

fn only(files: &[SourceFile], code: &str) {
    let report = analyze(files);
    let fired = report.fired_codes();
    assert_eq!(
        fired,
        BTreeSet::from([code]),
        "expected exactly {code}: {:#?}",
        report.diagnostics
    );
}

#[test]
fn lock_order_fixture_fires_qs0001_for_both_seeded_violations() {
    let report = analyze(&[lib("lock_order_bad.rs")]);
    assert_eq!(report.fired_codes(), BTreeSet::from(["QS0001"]));
    let messages: Vec<_> = errs(&report).iter().map(|d| d.message.clone()).collect();
    assert_eq!(messages.len(), 2, "{:#?}", report.diagnostics);
    assert!(
        messages
            .iter()
            .any(|m| m.contains("inner") && m.contains("map")),
        "the descending acquisition names both classes: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("mystery")),
        "the undeclared class is named: {messages:?}"
    );
}

#[test]
fn atomic_fixture_fires_qs0002() {
    only(&[lib("atomic_bad.rs")], "QS0002");
}

#[test]
fn failpoint_fixtures_fire_qs0003_in_both_directions() {
    let files = [
        lib("failpoint_dead.rs"),
        fx(
            "failpoint_misspelled.rs",
            "crates/fx/tests/failpoint_misspelled.rs",
            FileKind::Test,
        ),
    ];
    let report = analyze(&files);
    assert_eq!(report.fired_codes(), BTreeSet::from(["QS0003"]));
    let errors = errs(&report);
    assert_eq!(errors.len(), 2, "{:#?}", report.diagnostics);
    assert!(
        errors.iter().any(|d| d.message.contains("never armed")),
        "the dead site direction fires"
    );
    assert!(
        errors
            .iter()
            .any(|d| d.message.contains("fixture.oi") && d.message.contains("misspelled")),
        "the misspelled-reference direction fires"
    );
}

#[test]
fn protocol_fixture_fires_qs0004_for_every_broken_leg() {
    let report = analyze(&[lib("protocol_bad.rs")]);
    assert_eq!(report.fired_codes(), BTreeSet::from(["QS0004"]));
    // Pong is unhandled, unanswerable, and uncounted — three legs.
    let errors = errs(&report);
    assert_eq!(errors.len(), 3, "{:#?}", report.diagnostics);
    assert!(errors.iter().all(|d| d.message.contains("Pong")));
}

#[test]
fn forbidden_fixtures_fire_their_own_codes() {
    only(&[lib("forbidden_exit.rs")], "QS0005");
    only(&[lib("forbidden_println.rs")], "QS0006");
    only(&[lib("forbidden_unsafe.rs")], "QS0007");
}

#[test]
fn clean_fixture_is_silent() {
    let report = analyze(&[lib("clean.rs")]);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn suppression_markers_silence_or_downgrade() {
    let report = analyze(&[lib("suppressed.rs")]);
    assert_eq!(
        report.errors(),
        0,
        "justified relaxed-ok and allow QS0005 suppress entirely: {:#?}",
        report.diagnostics
    );
    let warns: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .collect();
    assert_eq!(warns.len(), 1, "{:#?}", report.diagnostics);
    assert_eq!(warns[0].rule.code(), "QS0002");
    assert!(
        warns[0].message.contains("bare"),
        "the warning asks for a justification: {}",
        warns[0].message
    );
}

#[test]
fn fixture_corpus_is_outside_the_workspace_walk() {
    // The self-clean gate scans the real repo; seeded violations must
    // never leak into it.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = quasar_sast::collect_workspace(&root).expect("walk workspace");
    assert!(
        files.iter().all(|f| !f.path.contains("fixtures/")),
        "fixtures must be skipped by the walker"
    );
    // Sanity: the walk still sees the analyzer's own sources.
    assert!(files
        .iter()
        .any(|f| f.path.ends_with("crates/sast/src/lib.rs")));
}

#[test]
fn every_fixture_under_the_directory_is_exercised() {
    // Guards against a future fixture landing without a matching test:
    // the set on disk must equal the set this suite references.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let on_disk: BTreeSet<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    let referenced = BTreeSet::from(
        [
            "lock_order_bad.rs",
            "atomic_bad.rs",
            "failpoint_dead.rs",
            "failpoint_misspelled.rs",
            "protocol_bad.rs",
            "forbidden_exit.rs",
            "forbidden_println.rs",
            "forbidden_unsafe.rs",
            "clean.rs",
            "suppressed.rs",
        ]
        .map(String::from),
    );
    assert_eq!(on_disk, referenced);
}

#[test]
fn codes_helper_smoke() {
    // `codes` is the shape every assertion above builds on; pin it.
    let fired = codes(&[lib("atomic_bad.rs"), lib("forbidden_exit.rs")]);
    assert_eq!(fired, BTreeSet::from(["QS0002", "QS0005"]));
}
