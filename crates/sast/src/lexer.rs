//! A hand-rolled Rust tokenizer: just enough lexical fidelity for
//! source-invariant analysis, with none of a real frontend's weight.
//!
//! The analyzer's rules reason about token *sequences* — `.lock()` calls,
//! `Ordering::Relaxed` arguments, `fail::set("name")` string literals —
//! so the lexer must get the hard cases right that naive regex scans
//! mangle: raw strings (`r#"..."#`), nested block comments, `'a` lifetime
//! vs `'a'` char literal, raw identifiers (`r#match`), and byte strings.
//! It must also never panic: it runs over arbitrary fixture snippets and
//! property-generated garbage, and a diagnostics tool that crashes on the
//! code it audits is worse than no tool.
//!
//! Guarantees:
//! - total: every input produces a token stream (unknown bytes become
//!   [`TokKind::Punct`] / are skipped, unterminated literals run to EOF);
//! - spans are strictly monotone in byte offset and non-decreasing in
//!   line, so diagnostics always point at or after the previous token.

/// One lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the token's first character.
    pub byte: usize,
}

/// Token payloads. Only the shapes the rules consume are distinguished;
/// all operators and delimiters surface as single-character [`Punct`]s
/// (consumers check adjacency for `::`, `->`, etc.).
///
/// [`Punct`]: TokKind::Punct
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword; raw identifiers are normalized (`r#match`
    /// lexes as `Ident("match")`).
    Ident(String),
    /// `'a`, `'static` — distinguished from char literals.
    Lifetime(String),
    /// String literal of any flavor (cooked, raw, byte, raw byte) with
    /// the *content* (escapes resolved for `\"`, `\\`, `\n`, `\t`, `\r`,
    /// `\0`; other escapes kept verbatim — failpoint names never use
    /// them).
    Str(String),
    /// Char or byte-char literal; content is irrelevant to every rule.
    Char,
    /// Numeric literal (raw text, suffix included).
    Num(String),
    /// Any other single character.
    Punct(char),
}

/// Lexer output: the token stream plus the `// sast:` control comments,
/// which rules consult for suppressions and justifications.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// `(line, text)` for every comment of the form `// sast: <text>`,
    /// with `text` trimmed. A marker suppresses/justifies findings on its
    /// own line or the line directly below (annotation-above style).
    pub markers: Vec<(u32, String)>,
}

impl Lexed {
    /// The `sast:` marker visible from `line` (same line or the one
    /// above), if any.
    pub fn marker_at(&self, line: u32) -> Option<&str> {
        self.markers
            .iter()
            .find(|(l, _)| *l == line || *l + 1 == line)
            .map(|(_, t)| t.as_str())
    }
}

struct Cursor<'a> {
    chars: Vec<(usize, char)>,
    src_len: usize,
    i: usize,
    line: u32,
    col: u32,
    _src: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.char_indices().collect(),
            src_len: src.len(),
            i: 0,
            line: 1,
            col: 1,
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn byte(&self) -> usize {
        self.chars
            .get(self.i)
            .map(|&(b, _)| b)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn done(&self) -> bool {
        self.i >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Total and panic-free by construction: the main loop
/// always consumes at least one character per iteration.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while !cur.done() {
        let (line, col, byte) = (cur.line, cur.col, cur.byte());
        let c = match cur.peek(0) {
            Some(c) => c,
            None => break,
        };
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            line_comment(&mut cur, &mut out, line);
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            block_comment(&mut cur);
            continue;
        }
        if c == '"' {
            cur.bump();
            let s = cooked_string(&mut cur);
            push(&mut out, TokKind::Str(s), line, col, byte);
            continue;
        }
        if c == '\'' {
            char_or_lifetime(&mut cur, &mut out, line, col, byte);
            continue;
        }
        if is_ident_start(c) {
            ident_or_prefixed_literal(&mut cur, &mut out, line, col, byte);
            continue;
        }
        if c.is_ascii_digit() {
            let n = number(&mut cur);
            push(&mut out, TokKind::Num(n), line, col, byte);
            continue;
        }
        cur.bump();
        push(&mut out, TokKind::Punct(c), line, col, byte);
    }
    out
}

fn push(out: &mut Lexed, kind: TokKind, line: u32, col: u32, byte: usize) {
    out.tokens.push(Token {
        kind,
        line,
        col,
        byte,
    });
}

fn line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // `// sast: relaxed-ok reason` / `// sast: allow QS0003 reason`
    let body = text.trim_start_matches('/').trim_start_matches('!').trim();
    if let Some(rest) = body.strip_prefix("sast:") {
        out.markers.push((line, rest.trim().to_string()));
    }
}

fn block_comment(cur: &mut Cursor) {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF, no panic
        }
    }
}

/// Content of a cooked string whose opening `"` is already consumed.
fn cooked_string(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => match cur.bump() {
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                Some('r') => s.push('\r'),
                Some('0') => s.push('\0'),
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some(other) => {
                    // Unknown escape: keep verbatim (rules never depend
                    // on exotic escapes; fidelity beats rejection).
                    s.push('\\');
                    s.push(other);
                }
                None => break,
            },
            _ => s.push(c),
        }
    }
    s
}

/// Raw string body after the `r`/`br` prefix: consumes `#…"` then scans
/// for `"` followed by the same number of `#`s.
fn raw_string(cur: &mut Cursor) -> String {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek(0) == Some('"') {
        cur.bump();
    }
    let mut s = String::new();
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            let mut k = 0usize;
            while k < hashes {
                if cur.peek(k) != Some('#') {
                    // A quote with too few hashes is content.
                    s.push('"');
                    for _ in 0..k {
                        s.push('#');
                        cur.bump();
                    }
                    continue 'scan;
                }
                k += 1;
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        s.push(c);
    }
    s
}

fn char_or_lifetime(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32, byte: usize) {
    cur.bump(); // the opening '
    match (cur.peek(0), cur.peek(1)) {
        // Escape ⇒ char literal: consume to the closing quote.
        (Some('\\'), _) => {
            cur.bump();
            cur.bump(); // the escaped char ('\'' included — handled here)
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            push(out, TokKind::Char, line, col, byte);
        }
        // 'x' ⇒ char literal.
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            push(out, TokKind::Char, line, col, byte);
        }
        // 'ident ⇒ lifetime.
        (Some(c), _) if is_ident_start(c) => {
            let mut name = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                name.push(c);
                cur.bump();
            }
            push(out, TokKind::Lifetime(name), line, col, byte);
        }
        // Stray quote (e.g. inside macro garbage): emit as punct.
        _ => push(out, TokKind::Punct('\''), line, col, byte),
    }
}

fn ident_or_prefixed_literal(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32, byte: usize) {
    let c = cur.peek(0).unwrap_or('_');
    // Raw / byte string prefixes: r" r#" b" br" br#"  — and the raw
    // identifier prefix r#ident.
    if c == 'r' || c == 'b' {
        let mut j = 1usize;
        if c == 'b' && cur.peek(1) == Some('r') {
            j = 2;
        }
        let mut hashes = 0usize;
        while cur.peek(j + hashes) == Some('#') {
            hashes += 1;
        }
        let after = cur.peek(j + hashes);
        let is_raw_capable = c == 'r' || j == 2; // r… or br…
        if after == Some('"')
            && (hashes == 0 || is_raw_capable)
            && (c != 'b' || j == 2 || hashes == 0)
        {
            if c == 'b' && j == 1 && hashes == 0 {
                // b"..." — cooked byte string.
                cur.bump(); // b
                cur.bump(); // "
                let s = cooked_string(cur);
                push(out, TokKind::Str(s), line, col, byte);
                return;
            }
            if is_raw_capable {
                for _ in 0..j {
                    cur.bump();
                }
                let s = raw_string(cur);
                push(out, TokKind::Str(s), line, col, byte);
                return;
            }
        }
        if c == 'b' && j == 1 && cur.peek(1) == Some('\'') {
            // b'x' — byte char.
            cur.bump(); // b
            char_or_lifetime(cur, out, line, col, byte);
            // char_or_lifetime pushed Char (or Lifetime for b'a — which
            // is not valid Rust anyway); either way we consumed it.
            return;
        }
        if c == 'r' && hashes == 1 && after.map(is_ident_start).unwrap_or(false) {
            // r#ident — raw identifier, normalized to the bare name.
            cur.bump(); // r
            cur.bump(); // #
            let name = plain_ident(cur);
            push(out, TokKind::Ident(name), line, col, byte);
            return;
        }
    }
    let name = plain_ident(cur);
    push(out, TokKind::Ident(name), line, col, byte);
}

fn plain_ident(cur: &mut Cursor) -> String {
    let mut name = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        name.push(c);
        cur.bump();
    }
    if name.is_empty() {
        // Defensive: caller guaranteed an ident-start char, but never
        // loop without consuming.
        if let Some(c) = cur.bump() {
            name.push(c);
        }
    }
    name
}

fn number(cur: &mut Cursor) -> String {
    let mut n = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            n.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // Fraction: only when `.` is followed by a digit (so `1..n` ranges
    // and `1.method()` stay untouched).
    if cur.peek(0) == Some('.') && cur.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
        n.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                n.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_with_hashes_and_embedded_quotes() {
        assert_eq!(
            strings(r####"let x = r#"a "quoted" b"#;"####),
            vec![r#"a "quoted" b"#]
        );
        assert_eq!(strings("r\"plain\""), vec!["plain"]);
        assert_eq!(strings("br#\"bytes\"#"), vec!["bytes"]);
        // A quote with too few hashes is content, not a terminator.
        assert_eq!(strings("r##\"one \"# two\"##"), vec!["one \"# two"]);
    }

    #[test]
    fn raw_identifiers_normalize() {
        assert_eq!(
            idents("let r#match = r#type;"),
            vec!["let", "match", "type"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\''; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime(_)))
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_generics_lex_as_puncts() {
        let toks = lex("let v: Vec<Vec<(u8, &'static str)>> = Vec::new();").tokens;
        let lt = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('<'))
            .count();
        let gt = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct('>'))
            .count();
        assert_eq!(lt, 2);
        assert_eq!(gt, 2);
    }

    #[test]
    fn nested_block_comments_and_sast_markers() {
        let l = lex("/* a /* b */ c */ x\n// sast: relaxed-ok snapshot read\ny");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Ident(_)))
                .count(),
            2
        );
        assert_eq!(l.markers, vec![(2, "relaxed-ok snapshot read".to_string())]);
        assert_eq!(l.marker_at(2), Some("relaxed-ok snapshot read"));
        assert_eq!(l.marker_at(3), Some("relaxed-ok snapshot read"));
        assert_eq!(l.marker_at(4), None);
    }

    #[test]
    fn escaped_quotes_in_cooked_strings() {
        assert_eq!(strings(r#""a \"b\" c\n""#), vec!["a \"b\" c\n"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("for i in 0..10 { let x = 1.5e3; }").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3"]);
    }

    #[test]
    fn spans_are_monotone() {
        let l = lex("fn main() {\n    let s = \"x\";\n}\n");
        let mut last = 0usize;
        let mut last_line = 0u32;
        for t in &l.tokens {
            assert!(t.byte >= last, "byte offsets must be monotone");
            assert!(t.line >= last_line, "lines must be non-decreasing");
            last = t.byte + 1;
            last_line = t.line;
        }
    }
}
