//! `quasar-sast` — source-level static analysis for the workspace's own
//! Rust code.
//!
//! Where [`quasar-lint`] audits trained *models*, this crate audits the
//! *sources* that produce and serve them: the concurrency and protocol
//! invariants that DESIGN.md documents but nothing previously checked.
//! A hand-rolled lexer ([`lexer`]) and token-stream helpers ([`scope`])
//! stand in for a real frontend — no `syn`, no new dependencies — which
//! is enough because every rule is lexical: lock acquisition order,
//! `Ordering::Relaxed` justifications, failpoint-name consistency,
//! request/response/metrics cross-references, and the forbidden patterns
//! the old grep script enforced, now with real spans.
//!
//! Rule catalogue (see DESIGN.md §16 for rationale and suppressions):
//!
//! | id     | name                     | severity |
//! |--------|--------------------------|----------|
//! | QS0001 | lock-order               | error    |
//! | QS0002 | atomic-ordering          | error (warn for an empty justification) |
//! | QS0003 | failpoint-registry       | error    |
//! | QS0004 | protocol-exhaustiveness  | error    |
//! | QS0005 | process-exit             | error    |
//! | QS0006 | println-in-library       | error    |
//! | QS0007 | unsafe-code              | error    |
//!
//! Suppression: a comment `// sast: allow QS000N <reason>` on the same
//! line or the line above silences that rule at that spot; the
//! atomic-ordering rule additionally honors its dedicated justification
//! form `// sast: relaxed-ok <reason>`.
//!
//! Entry points: [`collect_workspace`] gathers and classifies the
//! sources, [`analyze`] produces a [`SastReport`] with human
//! ([`SastReport::render_text`]) and JSON ([`SastReport::to_json`])
//! renderers. The CLI front door is `quasar sast [--json] [--deny
//! warn|error]` with the same 0/1/2 exit-code contract as `quasar lint`.
//!
//! [`quasar-lint`]: ../quasar_lint/index.html

pub mod lexer;
pub mod rules;
pub mod scope;

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::Path;

/// Diagnostic weight, ordered `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses `info|warn|error` (CLI `--deny` values).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable rule identifiers. Codes are append-only: a retired rule's code
/// is never reused, so CI logs and suppression comments stay meaningful
/// across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Locks acquired while another guard is live must follow the
    /// declared ascending-shard order; undeclared nesting is an error.
    LockOrder,
    /// `Ordering::Relaxed` on a non-counter atomic needs a
    /// `// sast: relaxed-ok <reason>` justification.
    AtomicOrdering,
    /// Every failpoint name armed in tests exists at an inject site and
    /// every inject site is armed somewhere — no dead or misspelled
    /// sites.
    FailpointRegistry,
    /// Every serve `Request` variant has a dispatch arm, a same-named
    /// `Response` variant that is actually rendered, and a metrics kind.
    ProtocolExhaustiveness,
    /// `process::exit` outside `src/bin` trees.
    ProcessExit,
    /// `println!` in library crates (stdout belongs to binaries).
    PrintlnInLibrary,
    /// `unsafe` in library code (the bench counting allocator lives in a
    /// binary tree and is exempt by classification).
    UnsafeCode,
}

impl RuleId {
    pub const ALL: [RuleId; 7] = [
        RuleId::LockOrder,
        RuleId::AtomicOrdering,
        RuleId::FailpointRegistry,
        RuleId::ProtocolExhaustiveness,
        RuleId::ProcessExit,
        RuleId::PrintlnInLibrary,
        RuleId::UnsafeCode,
    ];

    pub fn code(self) -> &'static str {
        match self {
            RuleId::LockOrder => "QS0001",
            RuleId::AtomicOrdering => "QS0002",
            RuleId::FailpointRegistry => "QS0003",
            RuleId::ProtocolExhaustiveness => "QS0004",
            RuleId::ProcessExit => "QS0005",
            RuleId::PrintlnInLibrary => "QS0006",
            RuleId::UnsafeCode => "QS0007",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            RuleId::LockOrder => "lock-order",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::FailpointRegistry => "failpoint-registry",
            RuleId::ProtocolExhaustiveness => "protocol-exhaustiveness",
            RuleId::ProcessExit => "process-exit",
            RuleId::PrintlnInLibrary => "println-in-library",
            RuleId::UnsafeCode => "unsafe-code",
        }
    }
}

/// What tree a source file belongs to — rules scope themselves by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/*/src` and the root `src/`, minus `src/bin` trees.
    Library,
    /// `src/bin` trees (CLI frontends, bench binaries).
    Binary,
    /// `tests/` trees.
    Test,
    /// `benches/` trees.
    Bench,
}

/// One source file queued for analysis. `path` is workspace-relative and
/// `/`-separated (used verbatim in diagnostics).
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub kind: FileKind,
    pub text: String,
}

/// One finding, anchored to a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: RuleId,
    pub severity: Severity,
    pub message: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// Analysis outcome: every diagnostic plus scan bookkeeping.
#[derive(Debug, Default)]
pub struct SastReport {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl SastReport {
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when any diagnostic is at or above the `deny` threshold —
    /// the CLI maps this to exit code 1.
    pub fn denies(&self, deny: Severity) -> bool {
        self.diagnostics.iter().any(|d| d.severity >= deny)
    }

    /// The distinct rule codes that fired — fixture tests assert on this.
    pub fn fired_codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.rule.code()).collect()
    }

    /// Human rendering: one line per finding, sorted by location, plus a
    /// summary footer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{}] {}:{}:{}: {}\n",
                d.severity,
                d.rule.code(),
                d.file,
                d.line,
                d.col,
                d.message
            ));
        }
        out.push_str(&format!(
            "sast: {} file(s) scanned, {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.errors(),
            self.warnings()
        ));
        out
    }

    /// One-line JSON rendering (hand-rolled: this crate takes no
    /// dependencies, serde included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"files\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.files_scanned,
            self.errors(),
            self.warnings()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                d.rule.code(),
                d.rule.name(),
                d.severity,
                escape_json(&d.file),
                d.line,
                d.col,
                escape_json(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Classifies a workspace-relative path, or `None` when the file is out
/// of scope (vendored code, build artifacts, analyzer fixtures).
pub fn classify(rel_path: &str) -> Option<FileKind> {
    let p = format!("/{}", rel_path.replace('\\', "/"));
    if !p.ends_with(".rs") {
        return None;
    }
    for skip in ["/vendor/", "/target/", "/.git/", "/fixtures/"] {
        if p.contains(skip) {
            return None;
        }
    }
    if p.contains("/src/bin/") {
        return Some(FileKind::Binary);
    }
    if p.contains("/tests/") {
        return Some(FileKind::Test);
    }
    if p.contains("/benches/") {
        return Some(FileKind::Bench);
    }
    if p.contains("/src/") {
        return Some(FileKind::Library);
    }
    None
}

/// Walks the workspace at `root` and loads every in-scope source file,
/// sorted by path so diagnostics are deterministic.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "vendor" | "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some(kind) = classify(&rel) {
                let text = std::fs::read_to_string(&path)?;
                out.push(SourceFile {
                    path: rel,
                    kind,
                    text,
                });
            }
        }
    }
    Ok(())
}

/// Runs every rule over `files` and returns the sorted report.
pub fn analyze(files: &[SourceFile]) -> SastReport {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|f| lexer::lex(&f.text)).collect();
    let mut diags = Vec::new();
    for (f, l) in files.iter().zip(&lexed) {
        rules::lock_order::check(f, l, &mut diags);
        rules::atomics::check(f, l, &mut diags);
        rules::forbidden::check(f, l, &mut diags);
    }
    rules::failpoints::check(files, &lexed, &mut diags);
    rules::protocol::check(files, &lexed, &mut diags);
    // Apply `// sast: allow QS000N` suppressions at the finding's line.
    let mut kept = Vec::new();
    for d in diags {
        let idx = files.iter().position(|f| f.path == d.file);
        let suppressed = idx
            .and_then(|i| lexed[i].marker_at(d.line))
            .map(|m| {
                m.strip_prefix("allow")
                    .map(|rest| rest.trim_start().starts_with(d.rule.code()))
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        if !suppressed {
            kept.push(d);
        }
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    SastReport {
        diagnostics: kept,
        files_scanned: files.len(),
    }
}

/// Convenience: analyze a whole workspace directory.
pub fn analyze_workspace(root: &Path) -> io::Result<SastReport> {
    Ok(analyze(&collect_workspace(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_scopes_trees() {
        assert_eq!(
            classify("crates/serve/src/shard.rs"),
            Some(FileKind::Library)
        );
        assert_eq!(classify("src/lib.rs"), Some(FileKind::Library));
        assert_eq!(classify("src/bin/quasar.rs"), Some(FileKind::Binary));
        assert_eq!(
            classify("crates/bench/src/bin/bench_refine.rs"),
            Some(FileKind::Binary)
        );
        assert_eq!(
            classify("crates/serve/tests/overload.rs"),
            Some(FileKind::Test)
        );
        assert_eq!(classify("crates/bench/benches/x.rs"), Some(FileKind::Bench));
        assert_eq!(classify("vendor/serde/src/lib.rs"), None);
        assert_eq!(classify("crates/sast/tests/fixtures/bad.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn json_escapes_and_summarizes() {
        let report = SastReport {
            diagnostics: vec![Diagnostic {
                rule: RuleId::ProcessExit,
                severity: Severity::Error,
                message: "say \"no\"".into(),
                file: "a.rs".into(),
                line: 3,
                col: 7,
            }],
            files_scanned: 1,
        };
        let json = report.to_json();
        assert!(json.contains("\"rule\":\"QS0005\""));
        assert!(json.contains("say \\\"no\\\""));
        assert!(report.denies(Severity::Error));
        assert!(report.denies(Severity::Info));
        assert_eq!(report.errors(), 1);
    }
}
