//! Token-stream navigation shared by the rules: bracket matching,
//! receiver-chain extraction, and small sequence probes.
//!
//! Everything here is index-based over the flat token vector from
//! [`crate::lexer::lex`] and total: out-of-range lookups return `None`
//! instead of panicking, so malformed snippets degrade to "no finding"
//! rather than a crash.

use crate::lexer::{TokKind, Token};

/// True when the token is the given punctuation character.
pub fn is_punct(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.kind == TokKind::Punct(c))
}

/// The identifier text at `i`, if that token is an identifier.
pub fn ident(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Index of the delimiter closing the one at `open` (`(`/`[`/`{`).
/// Counts all three bracket kinds together, so mixed nesting is skipped
/// correctly. Returns `None` when unbalanced (runs off the end).
pub fn matching_close(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the delimiter opening the one at `close`.
pub fn matching_open(toks: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = close as i64;
    while i >= 0 {
        match toks[i as usize].kind {
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth += 1,
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i as usize);
                }
            }
            _ => {}
        }
        i -= 1;
    }
    None
}

/// The *receiver class* of the method call whose name token sits at
/// `method_idx`: the nearest field-like identifier of the receiver chain,
/// skipping index brackets (`work[i].lock()` → `work`), tuple fields
/// (`slot.0.lock()` → `slot`), and interposed method calls
/// (`REGISTRY.get_or_init(..).lock()` → `REGISTRY`).
///
/// Returns `None` when the receiver is not a name (e.g. a parenthesized
/// expression) — callers treat that as an anonymous, unrankable lock.
pub fn receiver_class(toks: &[Token], method_idx: usize) -> Option<String> {
    if method_idx == 0 || !is_punct(toks, method_idx - 1, '.') {
        return None;
    }
    let mut p = method_idx.checked_sub(2)?;
    loop {
        match &toks.get(p)?.kind {
            TokKind::Ident(name) => return Some(name.clone()),
            // Tuple field: `slot.0` — skip the digit and its dot.
            TokKind::Num(_) if p >= 2 && is_punct(toks, p - 1, '.') => p -= 2,
            TokKind::Num(_) => return None,
            // Index: `work[i]` — skip to before the `[`.
            TokKind::Punct(']') => {
                let open = matching_open(toks, p)?;
                p = open.checked_sub(1)?;
            }
            // Call: `recv.method(args)` — skip the arg list; if the name
            // before the `(` is a `.`-method, skip it too and keep
            // walking the chain. A free/associated call (`stdout()`)
            // terminates the chain at the function's own name.
            TokKind::Punct(')') => {
                let open = matching_open(toks, p)?;
                let callee = open.checked_sub(1)?;
                match &toks.get(callee)?.kind {
                    TokKind::Ident(name) => {
                        if callee >= 1 && is_punct(toks, callee - 1, '.') {
                            p = callee.checked_sub(2)?;
                        } else {
                            return Some(name.clone());
                        }
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
}

/// True when `toks[i..]` starts with the given identifier sequence
/// separated by `::` (e.g. `seq_path(t, i, &["Ordering", "Relaxed"])`
/// matches `Ordering::Relaxed`).
pub fn seq_path(toks: &[Token], i: usize, names: &[&str]) -> bool {
    let mut j = i;
    for (k, name) in names.iter().enumerate() {
        if ident(toks, j) != Some(*name) {
            return false;
        }
        j += 1;
        if k + 1 < names.len() {
            if !(is_punct(toks, j, ':') && is_punct(toks, j + 1, ':')) {
                return false;
            }
            j += 2;
        }
    }
    true
}

/// True when the file contains `Ident(a) Ident(b)` adjacently — used for
/// `fn dispatch` / `enum Request` style probes.
pub fn contains_adjacent(toks: &[Token], a: &str, b: &str) -> bool {
    find_adjacent(toks, a, b).is_some()
}

/// First index of `Ident(a)` directly followed by `Ident(b)`.
pub fn find_adjacent(toks: &[Token], a: &str, b: &str) -> Option<usize> {
    (0..toks.len().saturating_sub(1))
        .find(|&i| ident(toks, i) == Some(a) && ident(toks, i + 1) == Some(b))
}

/// True when `Ident(qual)::Ident(name)` occurs anywhere in the stream.
pub fn contains_path(toks: &[Token], qual: &str, name: &str) -> bool {
    (0..toks.len()).any(|i| seq_path(toks, i, &[qual, name]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn class_of(src: &str, method: &str) -> Option<String> {
        let toks = lex(src).tokens;
        let idx = (0..toks.len()).find(|&i| ident(&toks, i) == Some(method))?;
        receiver_class(&toks, idx)
    }

    #[test]
    fn receiver_chains() {
        assert_eq!(class_of("self.map.read()", "read").as_deref(), Some("map"));
        assert_eq!(class_of("work[i].lock()", "lock").as_deref(), Some("work"));
        assert_eq!(class_of("slot.0.lock()", "lock").as_deref(), Some("slot"));
        assert_eq!(
            class_of("REGISTRY.get_or_init(|| Mutex::new(0)).lock()", "lock").as_deref(),
            Some("REGISTRY")
        );
        assert_eq!(
            class_of("self.shards[shard].epoch.write()", "write").as_deref(),
            Some("epoch")
        );
        assert_eq!(
            class_of("io::stdout().lock()", "lock").as_deref(),
            Some("stdout")
        );
        assert_eq!(class_of("(a + b).lock()", "lock"), None);
    }

    #[test]
    fn bracket_matching_mixes_kinds() {
        let toks = lex("f(a[b(c)], {d})").tokens;
        let open = (0..toks.len()).find(|&i| is_punct(&toks, i, '(')).unwrap();
        let close = matching_close(&toks, open).unwrap();
        assert!(is_punct(&toks, close, ')'));
        assert_eq!(close, toks.len() - 1);
        assert_eq!(matching_open(&toks, close), Some(open));
    }

    #[test]
    fn path_sequences() {
        let toks = lex("x.store(1, Ordering::Relaxed)").tokens;
        assert!((0..toks.len()).any(|i| seq_path(&toks, i, &["Ordering", "Relaxed"])));
        assert!(contains_path(&toks, "Ordering", "Relaxed"));
        assert!(!contains_path(&toks, "Ordering", "SeqCst"));
    }
}
