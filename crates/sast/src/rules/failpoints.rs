//! QS0003 — failpoint registry consistency.
//!
//! Failpoint names are stringly-typed: an inject site
//! (`fail::inject("serve.reload")`) and the tests that arm it
//! (`fail::set("serve.reload", ..)`) must agree on the name, and nothing
//! checks that at compile time. This rule extracts both sides from the
//! token streams and reconciles them globally:
//! - an armed/cleared name with no inject site is an error (a misspelled
//!   or stale test — the fault it believes it injects never happens);
//! - an inject site no test ever arms is an error (dead instrumentation
//!   — the failure path it guards is unexercised).
//!
//! Dynamic names built with `format!` ("serve.shard.panic.{id}") are
//! tracked as wildcard patterns: `{..}` segments become `*` and match any
//! text on the other side.

use crate::lexer::{Lexed, TokKind};
use crate::scope::{ident, is_punct};
use crate::{Diagnostic, RuleId, Severity, SourceFile};

/// A failpoint name occurrence: an inject site or an arming reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailName {
    /// The name with `format!` interpolations normalized to `*`.
    pub pattern: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// Extracts the inject-site names defined in a file: first string-literal
/// arguments of `inject(..)` / `inject_io(..)` calls. The registry
/// implementation itself (the file defining `fn inject` / `fn evaluate`)
/// is skipped — its self-tests arm synthetic names by design.
pub fn sites_in(file: &SourceFile, lexed: &Lexed) -> Vec<FailName> {
    if is_registry_impl(lexed) {
        return Vec::new();
    }
    extract(file, lexed, &["inject", "inject_io"], false)
}

/// Extracts the armed/cleared names referenced in a file:
/// `fail::set("..", ..)` and `fail::clear("..")`. When `armed_only`,
/// `clear` references are excluded (only `set` proves a site is
/// exercised).
pub fn refs_in(file: &SourceFile, lexed: &Lexed, armed_only: bool) -> Vec<FailName> {
    if is_registry_impl(lexed) {
        return Vec::new();
    }
    let methods: &[&str] = if armed_only {
        &["set"]
    } else {
        &["set", "clear"]
    };
    extract(file, lexed, methods, true)
}

/// True when the two patterns can name the same failpoint (`*` matches
/// any substring on either side).
pub fn patterns_overlap(a: &str, b: &str) -> bool {
    match (a.contains('*'), b.contains('*')) {
        (false, false) => a == b,
        (true, false) => glob_match(a, b),
        (false, true) => glob_match(b, a),
        (true, true) => {
            // Two dynamic names: compatible when the literal prefixes
            // agree up to the first wildcard.
            let ap = a.split('*').next().unwrap_or("");
            let bp = b.split('*').next().unwrap_or("");
            ap.starts_with(bp) || bp.starts_with(ap)
        }
    }
}

fn glob_match(pat: &str, name: &str) -> bool {
    // Simple backtracking glob: `*` matches any (possibly empty) run.
    fn rec(p: &[u8], n: &[u8]) -> bool {
        match p.first() {
            None => n.is_empty(),
            Some(b'*') => (0..=n.len()).any(|k| rec(&p[1..], &n[k..])),
            Some(&c) => n.first() == Some(&c) && rec(&p[1..], &n[1..]),
        }
    }
    rec(pat.as_bytes(), name.as_bytes())
}

fn is_registry_impl(lexed: &Lexed) -> bool {
    let toks = &lexed.tokens;
    let defines = |name: &str| {
        (0..toks.len().saturating_sub(1))
            .any(|i| ident(toks, i) == Some("fn") && ident(toks, i + 1) == Some(name))
    };
    defines("inject") && defines("evaluate")
}

/// `{interpolation}` segments become `*`.
fn normalize(name: &str) -> String {
    let mut out = String::new();
    let mut chars = name.chars();
    while let Some(c) = chars.next() {
        if c == '{' {
            for c2 in chars.by_ref() {
                if c2 == '}' {
                    break;
                }
            }
            out.push('*');
        } else {
            out.push(c);
        }
    }
    out
}

fn extract(
    file: &SourceFile,
    lexed: &Lexed,
    methods: &[&str],
    require_fail_path: bool,
) -> Vec<FailName> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if !methods.contains(&name) || !is_punct(toks, i + 1, '(') {
            continue;
        }
        // Skip the definition itself (`fn inject_io(..)`).
        if i > 0 && ident(toks, i - 1) == Some("fn") {
            continue;
        }
        // Arming references must come through the `fail::` path so a
        // generic `set(..)` method elsewhere is not miscounted.
        if require_fail_path {
            let qualified = i >= 3
                && is_punct(toks, i - 1, ':')
                && is_punct(toks, i - 2, ':')
                && ident(toks, i - 3) == Some("fail");
            if !qualified {
                continue;
            }
        }
        // First argument: `"lit"`, `&"lit"`, or `&format!("lit{..}")`.
        let mut j = i + 2;
        while is_punct(toks, j, '&') {
            j += 1;
        }
        if ident(toks, j) == Some("format")
            && is_punct(toks, j + 1, '!')
            && is_punct(toks, j + 2, '(')
        {
            j += 3;
            while is_punct(toks, j, '&') {
                j += 1;
            }
        }
        if let Some(TokKind::Str(s)) = toks.get(j).map(|t| &t.kind) {
            out.push(FailName {
                pattern: normalize(s),
                file: file.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
    }
    out
}

/// Cross-file reconciliation over the whole analyzed set.
pub fn check(files: &[SourceFile], lexed: &[Lexed], out: &mut Vec<Diagnostic>) {
    let mut sites: Vec<FailName> = Vec::new();
    let mut armed: Vec<FailName> = Vec::new();
    let mut referenced: Vec<FailName> = Vec::new();
    for (f, l) in files.iter().zip(lexed) {
        sites.extend(sites_in(f, l));
        armed.extend(refs_in(f, l, true));
        referenced.extend(refs_in(f, l, false));
    }
    if sites.is_empty() && referenced.is_empty() {
        return;
    }
    for r in &referenced {
        if !sites
            .iter()
            .any(|s| patterns_overlap(&s.pattern, &r.pattern))
        {
            out.push(Diagnostic {
                rule: RuleId::FailpointRegistry,
                severity: Severity::Error,
                message: format!(
                    "failpoint `{}` is armed/cleared here but no inject site defines it — \
                     misspelled or stale name",
                    r.pattern
                ),
                file: r.file.clone(),
                line: r.line,
                col: r.col,
            });
        }
    }
    for s in &sites {
        if !armed
            .iter()
            .any(|r| patterns_overlap(&s.pattern, &r.pattern))
        {
            out.push(Diagnostic {
                rule: RuleId::FailpointRegistry,
                severity: Severity::Error,
                message: format!(
                    "failpoint site `{}` is never armed by any test or bench — \
                     dead instrumentation (arm it or remove the site)",
                    s.pattern
                ),
                file: s.file.clone(),
                line: s.line,
                col: s.col,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::FileKind;

    fn file(path: &str, kind: FileKind, text: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            kind,
            text: text.into(),
        }
    }

    fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
        let lexed: Vec<_> = files.iter().map(|f| lex(&f.text)).collect();
        let mut out = Vec::new();
        check(files, &lexed, &mut out);
        out
    }

    #[test]
    fn consistent_registry_is_clean() {
        let d = run(&[
            file(
                "lib.rs",
                FileKind::Library,
                r#"fn f() { if fail::inject("a.b") { return; } }"#,
            ),
            file(
                "t.rs",
                FileKind::Test,
                r#"fn t() { fail::set("a.b", "always:error"); fail::clear("a.b"); }"#,
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn misspelled_reference_fires() {
        let d = run(&[
            file(
                "lib.rs",
                FileKind::Library,
                r#"fn f() { fail::inject("a.b"); }"#,
            ),
            file(
                "t.rs",
                FileKind::Test,
                r#"fn t() { fail::set("a.b", "always:error"); fail::set("a.bb", "once:panic"); }"#,
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("a.bb"));
    }

    #[test]
    fn dead_site_fires() {
        let d = run(&[file(
            "lib.rs",
            FileKind::Library,
            r#"fn f() { fail::inject("dead.site"); }"#,
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never armed"));
    }

    #[test]
    fn format_names_match_as_wildcards() {
        let d = run(&[
            file(
                "lib.rs",
                FileKind::Library,
                r#"fn f(id: usize) { fail::inject(&format!("s.panic.{id}")); }"#,
            ),
            file(
                "t.rs",
                FileKind::Test,
                r#"fn t(v: usize) { fail::set(&format!("s.panic.{v}"), "once:panic"); fail::set("s.panic.3", "off"); }"#,
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn clear_alone_does_not_arm() {
        let d = run(&[
            file(
                "lib.rs",
                FileKind::Library,
                r#"fn f() { fail::inject("x.y"); }"#,
            ),
            file("t.rs", FileKind::Test, r#"fn t() { fail::clear("x.y"); }"#),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never armed"));
    }

    #[test]
    fn registry_impl_self_tests_are_exempt() {
        let d = run(&[file(
            "fail.rs",
            FileKind::Library,
            r#"pub fn set(n: &str, s: &str) {} pub fn inject(n: &str) -> bool { false }
               pub fn evaluate(n: &str) {} fn t() { fail::set("t.synthetic", "once:error"); }"#,
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn overlap_rules() {
        assert!(patterns_overlap("a.b", "a.b"));
        assert!(!patterns_overlap("a.b", "a.c"));
        assert!(patterns_overlap("a.*", "a.b"));
        assert!(patterns_overlap("a.*", "a.*"));
        assert!(!patterns_overlap("a.*", "b.c"));
    }
}
