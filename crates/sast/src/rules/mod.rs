//! The rule implementations. Each module exposes a `check` that pushes
//! [`crate::Diagnostic`]s; `lib.rs` owns suppression and sorting.

pub mod atomics;
pub mod failpoints;
pub mod forbidden;
pub mod lock_order;
pub mod protocol;
