//! QS0002 — atomic-ordering audit.
//!
//! The shard state machine (HEALTHY → QUARANTINED → REBUILDING, DESIGN.md
//! §15) and every other cross-thread handshake must use explicit
//! non-`Relaxed` orderings; `Relaxed` is reserved for monotonic metrics
//! counters where only the eventual total matters. This rule flags every
//! atomic operation that passes `Ordering::Relaxed` in library code
//! unless either
//! - the receiver field is on the metrics-counter allowlist below, or
//! - the line (or the line above) carries `// sast: relaxed-ok <reason>`.
//!
//! A `relaxed-ok` marker with no reason is itself a warning: the whole
//! point of the justification is that the next reader learns *why* the
//! relaxation is sound.

use crate::lexer::Lexed;
use crate::scope::{ident, is_punct, matching_close, receiver_class, seq_path};
use crate::{Diagnostic, FileKind, RuleId, Severity, SourceFile};

/// Atomic methods that take ordering arguments.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
];

/// Monotonic metrics counters: `Relaxed` is the *correct* ordering here —
/// they are never used to publish other memory.
const COUNTER_ALLOWLIST: &[&str] = &[
    // serve shard + fleet counters
    "requests",
    "errors",
    "panics",
    "deadline_exceeded",
    // serve metrics registry
    "count",
    "total_us",
    "buckets",
    "connections",
    "panics_caught",
    "shed",
    "reloads",
    "reload_failures",
    "quarantines",
    "rebuilds",
    "rebuild_failures",
    // steady-state cache
    "hits",
    "misses",
    // chaos-proxy byte/event counters
    "chunks",
    "bytes_forward",
    "bytes_back",
    "delays",
    "truncated",
    "dropped",
];

pub fn check(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Library {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let Some(name) = ident(toks, i) else { continue };
        if !ATOMIC_METHODS.contains(&name) {
            continue;
        }
        if i == 0 || !is_punct(toks, i - 1, '.') || !is_punct(toks, i + 1, '(') {
            continue;
        }
        let Some(close) = matching_close(toks, i + 1) else {
            continue;
        };
        let relaxed = (i + 2..close).any(|j| seq_path(toks, j, &["Ordering", "Relaxed"]));
        if !relaxed {
            continue;
        }
        if let Some(class) = receiver_class(toks, i) {
            if COUNTER_ALLOWLIST.contains(&class.as_str()) {
                continue;
            }
        }
        let line = toks[i].line;
        match lexed
            .marker_at(line)
            .and_then(|m| m.strip_prefix("relaxed-ok"))
        {
            Some(reason) if !reason.trim().is_empty() => {}
            Some(_) => out.push(Diagnostic {
                rule: RuleId::AtomicOrdering,
                severity: Severity::Warn,
                message: format!(
                    "`{}` uses Ordering::Relaxed with a bare `sast: relaxed-ok` — \
                     state why the relaxation is sound",
                    name
                ),
                file: file.path.clone(),
                line,
                col: toks[i].col,
            }),
            None => out.push(Diagnostic {
                rule: RuleId::AtomicOrdering,
                severity: Severity::Error,
                message: format!(
                    "`{}` uses Ordering::Relaxed on a non-counter atomic — \
                     use an explicit stronger ordering or justify with \
                     `// sast: relaxed-ok <reason>`",
                    name
                ),
                file: file.path.clone(),
                line,
                col: toks[i].col,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile {
            path: "t.rs".into(),
            kind: FileKind::Library,
            text: src.into(),
        };
        let mut out = Vec::new();
        check(&f, &lex(src), &mut out);
        out
    }

    #[test]
    fn state_machine_relaxed_fires() {
        let d = run("fn f(&self) { self.state.store(1, Ordering::Relaxed); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn counters_are_exempt() {
        let d = run("fn f(&self) { self.requests.fetch_add(1, Ordering::Relaxed); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn justified_relaxed_is_clean_but_bare_marker_warns() {
        let clean = run("fn f(&self) {\n\
                 // sast: relaxed-ok display-only snapshot\n\
                 self.state.load(Ordering::Relaxed);\n\
             }");
        assert!(clean.is_empty(), "{clean:?}");
        let bare = run("fn f(&self) {\n\
                 // sast: relaxed-ok\n\
                 self.state.load(Ordering::Relaxed);\n\
             }");
        assert_eq!(bare.len(), 1);
        assert_eq!(bare[0].severity, Severity::Warn);
    }

    #[test]
    fn strong_orderings_pass() {
        let d = run(
            "fn f(&self) { self.state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_library_files_are_out_of_scope() {
        let f = SourceFile {
            path: "t.rs".into(),
            kind: FileKind::Test,
            text: "fn f() { X.store(1, Ordering::Relaxed); }".into(),
        };
        let mut out = Vec::new();
        check(&f, &lex(&f.text), &mut out);
        assert!(out.is_empty());
    }
}
