//! QS0005/QS0006/QS0007 — forbidden patterns, promoted from
//! `scripts/forbidden_patterns.sh` grep to token-accurate findings with
//! spans. The lexer makes these checks strictly better than grep: text in
//! comments, doc examples, and string literals no longer counts, and
//! `forbid(unsafe_code)` can never collide with the `unsafe` keyword.
//!
//! - QS0005: `process::exit` in library code — libraries return errors;
//!   only `src/bin` frontends may terminate the process.
//! - QS0006: `println!` in library *crates* (`crates/*/src`) — stdout
//!   belongs to the binaries; audit hooks use `eprintln!`. The root
//!   `src/` facade keeps the historical exemption.
//! - QS0007: the `unsafe` keyword in library code — every library crate
//!   carries `#![forbid(unsafe_code)]`; this holds even if an attribute
//!   is dropped. (The bench counting allocator lives under `src/bin` and
//!   is exempt by classification.)

use crate::lexer::Lexed;
use crate::scope::{ident, is_punct, seq_path};
use crate::{Diagnostic, FileKind, RuleId, Severity, SourceFile};

pub fn check(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if file.kind != FileKind::Library {
        return;
    }
    let toks = &lexed.tokens;
    let in_crates = file.path.starts_with("crates/") || file.path.contains("/crates/");
    for i in 0..toks.len() {
        if seq_path(toks, i, &["process", "exit"]) {
            out.push(Diagnostic {
                rule: RuleId::ProcessExit,
                severity: Severity::Error,
                message: "process::exit in library code — return an error; only src/bin \
                          frontends may terminate the process"
                    .into(),
                file: file.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
        if in_crates && ident(toks, i) == Some("println") && is_punct(toks, i + 1, '!') {
            out.push(Diagnostic {
                rule: RuleId::PrintlnInLibrary,
                severity: Severity::Error,
                message: "println! in a library crate — stdout belongs to the binaries \
                          (use eprintln! for diagnostics or return the value)"
                    .into(),
                file: file.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
        if ident(toks, i) == Some("unsafe") {
            out.push(Diagnostic {
                rule: RuleId::UnsafeCode,
                severity: Severity::Error,
                message: "`unsafe` in library code — the workspace forbids it outside the \
                          bench counting allocator"
                    .into(),
                file: file.path.clone(),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile {
            path: path.into(),
            kind,
            text: src.into(),
        };
        let mut out = Vec::new();
        check(&f, &lex(src), &mut out);
        out
    }

    #[test]
    fn process_exit_fires_in_library_not_binary() {
        let lib = run(
            "crates/x/src/lib.rs",
            FileKind::Library,
            "fn f() { std::process::exit(1); }",
        );
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, RuleId::ProcessExit);
        let bin = run(
            "src/bin/q.rs",
            FileKind::Binary,
            "fn f() { std::process::exit(1); }",
        );
        assert!(bin.is_empty());
    }

    #[test]
    fn println_fires_in_crates_only_and_eprintln_passes() {
        let d = run(
            "crates/x/src/lib.rs",
            FileKind::Library,
            "fn f() { println!(\"x\"); eprintln!(\"y\"); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::PrintlnInLibrary);
        let root = run(
            "src/lib.rs",
            FileKind::Library,
            "fn f() { println!(\"x\"); }",
        );
        assert!(root.is_empty(), "root src keeps the historical exemption");
    }

    #[test]
    fn unsafe_keyword_fires_but_forbid_attribute_does_not() {
        let d = run(
            "crates/x/src/lib.rs",
            FileKind::Library,
            "#![forbid(unsafe_code)]\nfn f() { let p = unsafe { *x }; }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn comments_and_strings_do_not_count() {
        let d = run(
            "crates/x/src/lib.rs",
            FileKind::Library,
            "// process::exit is banned; println! too; unsafe as well\n\
             fn f() { let s = \"process::exit println! unsafe\"; }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
