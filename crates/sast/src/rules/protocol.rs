//! QS0004 — protocol exhaustiveness.
//!
//! The serve protocol is a closed loop: every `Request` variant must be
//! (a) handled by a dispatch match arm, (b) answerable — a same-named
//! `Response` variant exists *and* is actually rendered by the protocol
//! file's serializer — and (c) counted — `Request::kind()` maps it onto a
//! declared `RequestKind` metrics bucket. The compiler enforces match
//! exhaustiveness only inside one function; this rule enforces the
//! *cross-file* contract (handler ↔ reply ↔ counter), which is exactly
//! what silently breaks when a new variant lands in `protocol.rs` but not
//! in `metrics.rs` or the dispatch tier.
//!
//! All checks are lexical over the analyzed file set; when no `enum
//! Request` is present (e.g. a fixture set) the rule is silent.

use crate::lexer::Lexed;
use crate::scope::{contains_path, find_adjacent, ident, is_punct, matching_close, seq_path};
use crate::{Diagnostic, FileKind, RuleId, Severity, SourceFile};

/// A variant with its declaration span.
#[derive(Debug, Clone)]
struct Variant {
    name: String,
    line: u32,
    col: u32,
}

/// Extracts the variant names of `enum <enum_name> { .. }` from a token
/// stream, or `None` when the enum is not declared there.
fn enum_variants(lexed: &Lexed, enum_name: &str) -> Option<(Vec<Variant>, usize, usize)> {
    let toks = &lexed.tokens;
    let at = (0..toks.len())
        .find(|&i| ident(toks, i) == Some("enum") && ident(toks, i + 1) == Some(enum_name))?;
    // Opening brace after the name (generics on these enums don't occur,
    // but scan forward defensively).
    let open = (at + 2..toks.len()).find(|&i| is_punct(toks, i, '{'))?;
    let close = matching_close(toks, open)?;
    let mut variants = Vec::new();
    let mut depth = 0i64;
    let mut i = open + 1;
    while i < close {
        match toks[i].kind {
            crate::lexer::TokKind::Punct('{')
            | crate::lexer::TokKind::Punct('(')
            | crate::lexer::TokKind::Punct('[') => depth += 1,
            crate::lexer::TokKind::Punct('}')
            | crate::lexer::TokKind::Punct(')')
            | crate::lexer::TokKind::Punct(']') => depth -= 1,
            crate::lexer::TokKind::Ident(ref name) if depth == 0 => {
                // A variant name starts uppercase; field names and type
                // tokens inside payloads sit at depth > 0 or after `:`.
                let starts_upper = name.chars().next().map(char::is_uppercase).unwrap_or(false);
                let is_field_type = i > open + 1 && is_punct(toks, i - 1, ':');
                if starts_upper && !is_field_type {
                    variants.push(Variant {
                        name: name.clone(),
                        line: toks[i].line,
                        col: toks[i].col,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((variants, open, close))
}

/// The token range of `fn <name>`'s body within a stream, if defined.
fn fn_body(lexed: &Lexed, name: &str) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let at = find_adjacent(toks, "fn", name)?;
    let open = (at + 2..toks.len()).find(|&i| is_punct(toks, i, '{'))?;
    let close = matching_close(toks, open)?;
    Some((open, close))
}

/// `Qual::Name` occurrences within a token index range.
fn path_in_range(lexed: &Lexed, range: (usize, usize), qual: &str, name: &str) -> bool {
    (range.0..range.1).any(|i| seq_path(&lexed.tokens, i, &[qual, name]))
}

pub fn check(files: &[SourceFile], lexed: &[Lexed], out: &mut Vec<Diagnostic>) {
    // The protocol file: the library source declaring `enum Request`.
    let Some(proto_idx) = files
        .iter()
        .zip(lexed)
        .position(|(f, l)| f.kind == FileKind::Library && enum_variants(l, "Request").is_some())
    else {
        return;
    };
    let proto = &files[proto_idx];
    let proto_lex = &lexed[proto_idx];
    let Some((variants, _, _)) = enum_variants(proto_lex, "Request") else {
        return;
    };

    // Dispatch tier: every library file defining `fn dispatch`.
    let dispatchers: Vec<usize> = files
        .iter()
        .zip(lexed)
        .enumerate()
        .filter(|(_, (f, l))| {
            f.kind == FileKind::Library && find_adjacent(&l.tokens, "fn", "dispatch").is_some()
        })
        .map(|(i, _)| i)
        .collect();

    // Response enum + renderer references live in the protocol file (or
    // any library file, for layouts that split them).
    let response_variants: Vec<String> = files
        .iter()
        .zip(lexed)
        .filter(|(f, _)| f.kind == FileKind::Library)
        .filter_map(|(_, l)| enum_variants(l, "Response"))
        .flat_map(|(vs, _, _)| vs.into_iter().map(|v| v.name))
        .collect();
    let kind_body = fn_body(proto_lex, "kind");

    for v in &variants {
        let diag = |message: String| Diagnostic {
            rule: RuleId::ProtocolExhaustiveness,
            severity: Severity::Error,
            message,
            file: proto.path.clone(),
            line: v.line,
            col: v.col,
        };

        // (a) a dispatch arm somewhere in the dispatch tier.
        let handled = dispatchers
            .iter()
            .any(|&i| contains_path(&lexed[i].tokens, "Request", &v.name));
        if !handled {
            out.push(diag(format!(
                "Request::{} has no match arm in any `fn dispatch` — the server cannot answer it",
                v.name
            )));
        }

        // (b) a same-named Response variant that the protocol file
        // actually renders (references outside the enum declaration).
        if !response_variants.iter().any(|r| r == &v.name) {
            out.push(diag(format!(
                "Request::{} has no same-named Response variant — no typed reply exists",
                v.name
            )));
        } else {
            let rendered = match enum_variants(proto_lex, "Response") {
                Some((_, open, close)) => (0..proto_lex.tokens.len()).any(|i| {
                    (i < open || i > close)
                        && seq_path(&proto_lex.tokens, i, &["Response", &v.name])
                }),
                // Response declared in another file: accept any reference
                // in that file.
                None => files.iter().zip(lexed).any(|(f, l)| {
                    f.kind == FileKind::Library && contains_path(&l.tokens, "Response", &v.name)
                }),
            };
            if !rendered {
                out.push(diag(format!(
                    "Response::{} is declared but never rendered by the protocol serializer",
                    v.name
                )));
            }
        }

        // (c) a metrics mapping in Request::kind().
        match kind_body {
            Some(range) => {
                if !path_in_range(proto_lex, range, "Request", &v.name) {
                    out.push(diag(format!(
                        "Request::{} is not mapped in Request::kind() — it would go uncounted",
                        v.name
                    )));
                }
            }
            None => out.push(diag(format!(
                "Request::{}: no `fn kind` found next to `enum Request` — metrics mapping missing",
                v.name
            ))),
        }
    }

    // Every RequestKind referenced by kind() must be a declared bucket.
    if let Some(range) = kind_body {
        let declared: Vec<String> = files
            .iter()
            .zip(lexed)
            .filter(|(f, _)| f.kind == FileKind::Library)
            .filter_map(|(_, l)| enum_variants(l, "RequestKind"))
            .flat_map(|(vs, _, _)| vs.into_iter().map(|v| v.name))
            .collect();
        if !declared.is_empty() {
            let toks = &proto_lex.tokens;
            for i in range.0..range.1 {
                if seq_path(toks, i, &["RequestKind"]) {
                    // `RequestKind::K`
                    if is_punct(toks, i + 1, ':') && is_punct(toks, i + 2, ':') {
                        if let Some(k) = ident(toks, i + 3) {
                            if !declared.iter().any(|d| d == k) {
                                out.push(Diagnostic {
                                    rule: RuleId::ProtocolExhaustiveness,
                                    severity: Severity::Error,
                                    message: format!(
                                        "RequestKind::{k} is referenced by Request::kind() but not \
                                         declared — the metrics bucket does not exist"
                                    ),
                                    file: proto.path.clone(),
                                    line: toks[i].line,
                                    col: toks[i].col,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(path: &str, kind: FileKind, text: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            kind,
            text: text.into(),
        }
    }

    fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
        let lexed: Vec<_> = files.iter().map(|f| lex(&f.text)).collect();
        let mut out = Vec::new();
        check(files, &lexed, &mut out);
        out
    }

    const GOOD_PROTO: &str = r#"
        pub enum Request { Ping, Stats { verbose: bool } }
        pub enum Response { Ping, Stats(StatsReply), Error(String) }
        impl Request {
            pub fn kind(&self) -> RequestKind {
                match self {
                    Request::Ping => RequestKind::Ping,
                    Request::Stats { .. } => RequestKind::Stats,
                }
            }
        }
        fn render(r: &Response) -> &str {
            match r {
                Response::Ping => "ping",
                Response::Stats(_) => "stats",
                Response::Error(_) => "error",
            }
        }
    "#;

    const METRICS: &str = "pub enum RequestKind { Ping, Stats, Error }";

    const DISPATCH: &str = r#"
        fn dispatch(req: &Request) -> Response {
            match req {
                Request::Ping => Response::Ping,
                Request::Stats { .. } => Response::Stats(reply()),
            }
        }
    "#;

    #[test]
    fn closed_loop_is_clean() {
        let d = run(&[
            file("protocol.rs", FileKind::Library, GOOD_PROTO),
            file("metrics.rs", FileKind::Library, METRICS),
            file("server.rs", FileKind::Library, DISPATCH),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unhandled_variant_fires() {
        let proto = GOOD_PROTO.replace(
            "pub enum Request { Ping, Stats { verbose: bool } }",
            "pub enum Request { Ping, Stats { verbose: bool }, Orphan }",
        );
        let d = run(&[
            file("protocol.rs", FileKind::Library, &proto),
            file("metrics.rs", FileKind::Library, METRICS),
            file("server.rs", FileKind::Library, DISPATCH),
        ]);
        // Orphan: no dispatch arm, no Response variant, no kind mapping.
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|x| x.message.contains("Orphan")));
    }

    #[test]
    fn unknown_metrics_bucket_fires() {
        let proto = GOOD_PROTO.replace("RequestKind::Stats", "RequestKind::Stets");
        let d = run(&[
            file("protocol.rs", FileKind::Library, &proto),
            file("metrics.rs", FileKind::Library, METRICS),
            file("server.rs", FileKind::Library, DISPATCH),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Stets"));
    }

    #[test]
    fn silent_without_a_protocol() {
        let d = run(&[file("lib.rs", FileKind::Library, "fn f() {}")]);
        assert!(d.is_empty(), "{d:?}");
    }
}
