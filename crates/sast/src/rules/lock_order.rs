//! QS0001 — lock-order discipline.
//!
//! DESIGN.md §14 declares one global acquisition order for every lock in
//! the serve tier (ascending by rank below); deadlock freedom rests on
//! every nested acquisition following it. This rule walks each file's
//! token stream with a brace/scope tracker, models which lock guards are
//! *live* at every point, and flags any `.lock()`/`.read()`/`.write()`
//! acquired under a live guard out of order — or on a lock class the
//! table does not declare at all (undeclared nesting is an error: a new
//! lock must be ranked before it may nest).
//!
//! Guard-liveness model (lexical, deliberately simple):
//! - `let g = <recv>.lock();` holds the guard until `g` leaves scope —
//!   trailing poison-recovery adapters (`.unwrap()`, `.expect(..)`,
//!   `.unwrap_or_else(..)`) do not end it, any other trailing call does
//!   (the guard was a temporary, e.g. `.lock().take()`);
//! - `let _ = <recv>.lock();` drops immediately (not held);
//! - `let gs: Vec<_> = iter.map(|s| s.epoch.write()).collect();` holds
//!   every collected guard (the `.collect()` heuristic);
//! - `drop(g)` ends the binding's guards early;
//! - every block `{ .. }` is a scope: guards die at its `}`.
//!
//! Acquisitions that produce temporaries (`*self.map.write() = m;`) are
//! still *checked* against the live set at the acquisition point — a
//! temporary taken out of order deadlocks just the same.

use crate::lexer::{Lexed, TokKind, Token};
use crate::scope::{ident, is_punct, matching_close, receiver_class};
use crate::{Diagnostic, RuleId, Severity, SourceFile};

/// The declared ascending acquisition order: `(class, rank,
/// same_rank_ok)`. `same_rank_ok` marks classes where holding several
/// guards of the *same* class is legal because acquisition is by
/// ascending shard index (the coordinated-swap protocol).
const RANKS: &[(&str, u32, bool)] = &[
    // Test serialization locks: always outermost.
    ("TEST_LOCK", 0, false),
    ("SERIAL", 0, false),
    // The failpoint registry mutex nests directly under a test lock.
    ("REGISTRY", 5, false),
    // Fleet reload serialization: taken before any epoch or map lock.
    ("reload_lock", 10, false),
    // Per-shard epochs, acquired by ascending shard index.
    ("epoch", 20, true),
    // The fleet's prefix→shard map.
    ("map", 30, false),
    // Steady-state cache: slot table, then one slot's cell.
    ("slots", 40, false),
    ("slot", 45, false),
    // Session table interior.
    ("inner", 50, false),
    // Streaming heartbeat mailbox: leaf, never holds anything else.
    ("stream_report", 60, false),
];

fn rank_of(class: &str) -> Option<(u32, bool)> {
    RANKS
        .iter()
        .find(|(c, _, _)| *c == class)
        .map(|&(_, r, ok)| (r, ok))
}

/// Trailing adapters that keep the guard: poison recovery only.
const POISON_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Guard-producing methods: zero-argument `.lock()/.read()/.write()`.
const ACQUIRERS: &[&str] = &["lock", "read", "write"];

#[derive(Debug, Clone)]
struct Guard {
    class: String,
    rank: Option<(u32, bool)>,
    binding: String,
    line: u32,
}

#[derive(Debug)]
struct PendingAcq {
    class: Option<String>,
    line: u32,
    /// Paren/bracket depth relative to the statement start.
    depth: u32,
    /// Token index of the acquirer method name.
    tok: usize,
}

pub fn check(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];

    // Per-statement state.
    let mut stmt_start = 0usize;
    let mut depth = 0u32;
    let mut pending: Vec<PendingAcq> = Vec::new();
    let mut has_collect = false;

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                end_stmt(
                    file,
                    toks,
                    stmt_start,
                    i,
                    &mut pending,
                    has_collect,
                    &mut scopes,
                );
                has_collect = false;
                depth = 0;
                scopes.push(Vec::new());
                stmt_start = i + 1;
            }
            TokKind::Punct('}') => {
                end_stmt(
                    file,
                    toks,
                    stmt_start,
                    i,
                    &mut pending,
                    has_collect,
                    &mut scopes,
                );
                has_collect = false;
                depth = 0;
                scopes.pop();
                if scopes.is_empty() {
                    scopes.push(Vec::new()); // unbalanced input: stay total
                }
                stmt_start = i + 1;
            }
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
            TokKind::Punct(';') | TokKind::Punct(',') if depth == 0 => {
                end_stmt(
                    file,
                    toks,
                    stmt_start,
                    i,
                    &mut pending,
                    has_collect,
                    &mut scopes,
                );
                has_collect = false;
                stmt_start = i + 1;
            }
            TokKind::Ident(name) => {
                if name == "collect" {
                    has_collect = true;
                }
                // `drop(g)` ends g's guards early.
                if name == "drop" && is_punct(toks, i + 1, '(') && is_punct(toks, i + 3, ')') {
                    if let Some(binding) = ident(toks, i + 2) {
                        for scope in scopes.iter_mut() {
                            scope.retain(|g| g.binding != binding);
                        }
                    }
                }
                if ACQUIRERS.contains(&name.as_str())
                    && i > 0
                    && is_punct(toks, i - 1, '.')
                    && is_punct(toks, i + 1, '(')
                    && is_punct(toks, i + 2, ')')
                {
                    let class = receiver_class(toks, i);
                    check_order(file, &toks[i], class.as_deref(), &scopes, out);
                    pending.push(PendingAcq {
                        class,
                        line: toks[i].line,
                        depth,
                        tok: i,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    end_stmt(
        file,
        toks,
        stmt_start,
        toks.len(),
        &mut pending,
        has_collect,
        &mut scopes,
    );
}

/// Flags `class` against every live guard at the acquisition point.
fn check_order(
    file: &SourceFile,
    at: &Token,
    class: Option<&str>,
    scopes: &[Vec<Guard>],
    out: &mut Vec<Diagnostic>,
) {
    let new_rank = class.and_then(rank_of);
    for held in scopes.iter().flatten() {
        let msg = match (held.rank, new_rank) {
            (Some((held_r, _)), Some((new_r, new_ok))) => {
                let same_class = class == Some(held.class.as_str());
                if new_r > held_r || (new_r == held_r && same_class && new_ok) {
                    continue;
                }
                format!(
                    "lock `{}` (rank {}) acquired while `{}` (rank {}, held since line {}) is live — \
                     the declared order is ascending",
                    class.unwrap_or("?"),
                    new_r,
                    held.class,
                    held_r,
                    held.line
                )
            }
            _ => {
                let undeclared = if new_rank.is_none() {
                    class.unwrap_or("<anonymous>")
                } else {
                    held.class.as_str()
                };
                format!(
                    "lock `{}` nests with `{}` but `{}` has no declared rank — \
                     add it to the acquisition-order table before nesting it",
                    class.unwrap_or("<anonymous>"),
                    held.class,
                    undeclared
                )
            }
        };
        out.push(Diagnostic {
            rule: RuleId::LockOrder,
            severity: Severity::Error,
            message: msg,
            file: file.path.clone(),
            line: at.line,
            col: at.col,
        });
    }
}

/// Statement boundary: decide which pending acquisitions became held
/// guards and install them in the current scope.
fn end_stmt(
    file: &SourceFile,
    toks: &[Token],
    start: usize,
    end: usize,
    pending: &mut Vec<PendingAcq>,
    has_collect: bool,
    scopes: &mut [Vec<Guard>],
) {
    let _ = file;
    if pending.is_empty() {
        return;
    }
    let acqs = std::mem::take(pending);
    // `let [mut] <binding> = ...` — anything else produces temporaries.
    let mut j = start;
    if ident(toks, j) != Some("let") {
        return;
    }
    j += 1;
    if ident(toks, j) == Some("mut") {
        j += 1;
    }
    let binding = match ident(toks, j) {
        Some(b) => b.to_string(),
        None => return, // destructuring pattern: not a guard binding
    };
    if binding == "_" || binding == "Some" || binding == "Ok" || binding == "Err" {
        // `let _ = ..` drops immediately; let-else patterns extract the
        // payload, not the guard.
        return;
    }
    for acq in acqs {
        let held = if acq.depth == 0 {
            only_poison_chain(toks, acq.tok + 2, end)
        } else {
            has_collect
        };
        if !held {
            continue;
        }
        let class = match acq.class {
            Some(c) => c,
            None => continue,
        };
        let rank = rank_of(&class);
        if let Some(scope) = scopes.last_mut() {
            scope.push(Guard {
                class,
                rank,
                binding: binding.clone(),
                line: acq.line,
            });
        }
    }
}

/// True when everything after the acquirer's `()` (token index `close`)
/// up to the statement end is a chain of poison-recovery adapters — the
/// guard survives into the binding. Any other trailing call or field
/// access means the bound value is not the guard.
fn only_poison_chain(toks: &[Token], close: usize, end: usize) -> bool {
    let mut j = close + 1;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct(';') => return true,
            TokKind::Punct('.') => {
                let Some(name) = ident(toks, j + 1) else {
                    return false;
                };
                if !POISON_ADAPTERS.contains(&name) {
                    return false;
                }
                if !is_punct(toks, j + 2, '(') {
                    return false;
                }
                match matching_close(toks, j + 2) {
                    Some(c) => j = c + 1,
                    None => return false,
                }
            }
            // `else` (let-else) or anything else trailing: treat as end.
            TokKind::Ident(k) if k == "else" => return true,
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::{FileKind, SourceFile};

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile {
            path: "t.rs".into(),
            kind: FileKind::Library,
            text: src.into(),
        };
        let mut out = Vec::new();
        check(&f, &lex(src), &mut out);
        out
    }

    #[test]
    fn ascending_nesting_is_clean() {
        let d = run("fn f(&self) {\n\
                 let _serialized = self.reload_lock.lock();\n\
                 let guards: Vec<_> = self.shards.iter().map(|s| s.epoch.write()).collect();\n\
                 *self.map.write() = m;\n\
                 drop(guards);\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn descending_nesting_fires() {
        let d = run("fn f(&self) {\n\
                 let _m = self.map.write();\n\
                 let _r = self.reload_lock.lock();\n\
             }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("rank 10"));
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn undeclared_nesting_fires() {
        let d = run("fn f(&self) {\n\
                 let _r = self.reload_lock.lock();\n\
                 let _x = self.mystery.lock();\n\
             }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("mystery"));
    }

    #[test]
    fn inner_blocks_release_guards() {
        let d = run("fn f(&self) {\n\
                 { let _e = self.epoch.read(); }\n\
                 let _r = self.reload_lock.lock();\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporaries_are_checked_but_not_held() {
        // The `.read()` temporary on line 2 dies at end of statement, so
        // line 3's lower-ranked lock is legal...
        let clean = run("fn f(&self) {\n\
                 let m = Arc::clone(&self.map.read());\n\
                 let _r = self.reload_lock.lock();\n\
             }");
        assert!(clean.is_empty(), "{clean:?}");
        // ...but a temporary acquired *under* a live guard is checked.
        let bad = run("fn f(&self) {\n\
                 let _s = self.slots.write();\n\
                 *self.map.write() = m;\n\
             }");
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn same_rank_ok_only_for_marked_classes() {
        let ok = run("fn f(&self) { let g: Vec<_> = s.iter().map(|s| s.epoch.write()).collect(); let h = x.epoch.write(); }");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run("fn f(&self) { let a = self.map.write(); let b = other.map.write(); }");
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn drop_ends_liveness() {
        let d = run("fn f(&self) {\n\
                 let g = self.map.write();\n\
                 drop(g);\n\
                 let _r = self.reload_lock.lock();\n\
             }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn poison_recovery_keeps_the_guard_but_take_does_not() {
        let held = run("fn f() {\n\
                 let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());\n\
                 let _x = self.mystery.lock();\n\
             }");
        assert_eq!(held.len(), 1, "TEST_LOCK must stay live: {held:?}");
        let temp = run("fn f() {\n\
                 let v = self.map.write().take();\n\
                 let _r = self.reload_lock.lock();\n\
             }");
        assert!(temp.is_empty(), "`.take()` ends the guard: {temp:?}");
    }
}
