//! Differential harness, exercised for real: executions that must agree
//! (sequential vs parallel refinement, a live server vs one-shot
//! dispatch, a JSON-round-tripped model vs the in-memory original) are
//! compared field by field, and the harness itself is checked to point
//! at the right field when fed a deliberate divergence.

use quasar_testkit::diff::{refine_differential, roundtrip_differential, served_vs_oneshot};
use quasar_testkit::prelude::*;

#[test]
fn sequential_and_parallel_refinement_agree() {
    let fx = tiny_trained(101);
    if let Err(d) = refine_differential(&fx.full, &fx.training, &[2, 4]) {
        panic!("{d}");
    }
}

#[test]
fn served_replies_match_oneshot_dispatch() {
    let model = toy_model();
    if let Err(d) = served_vs_oneshot(&model, &toy_requests()) {
        panic!("{d}");
    }
}

#[test]
fn json_roundtripped_model_answers_identically() {
    // The hand-built model and a refined synthetic one: both must
    // survive a serialize/deserialize cycle without changing any answer.
    if let Err(d) = roundtrip_differential(&toy_model(), &toy_requests()) {
        panic!("{d}");
    }
    let fx = tiny_trained(101);
    let prefix = fx
        .model
        .prefixes()
        .keys()
        .next()
        .expect("trained model has prefixes")
        .to_string();
    let requests = vec![
        format!(
            r#"{{"type":"explain","prefix":"{prefix}","observer":{}}}"#,
            {
                // Any observer present in the trained model: take the origin
                // of the first prefix, which always has quasi-routers.
                fx.model.prefixes().values().next().unwrap().0
            }
        ),
        r#"{"type":"stats"}"#.to_string(),
    ];
    if let Err(d) = roundtrip_differential(&fx.model, &requests) {
        panic!("{d}");
    }
}

#[test]
fn harness_pinpoints_a_planted_divergence() {
    // Two servers over *different* models must diverge, and the harness
    // must point inside the reply body, not just say "differs".
    let left = quasar_serve::server::ServerState::new(
        toy_model(),
        quasar_serve::server::ServeConfig::default(),
    );
    let fx = tiny_trained(101);
    let right = quasar_serve::server::ServerState::new(
        fx.model,
        quasar_serve::server::ServeConfig::default(),
    );
    let d = states_differential(
        "toy vs trained",
        &left,
        &right,
        &[r#"{"type":"stats"}"#.to_string()],
    )
    .expect_err("different models must diverge on stats");
    assert!(d.path.starts_with("$."), "path must be rooted: {}", d.path);
    assert_ne!(d.left, d.right, "reported sides must actually differ");
}
