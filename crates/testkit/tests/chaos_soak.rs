//! Chaos soak: hundreds of requests against a live `serve()` instance
//! through the seeded chaos proxy — split writes, per-chunk delays,
//! truncated streams, dropped connections — asserting that the server
//! never panics, never wedges a worker, and that every reply that
//! arrives complete is byte-identical to the fault-free run.

use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_testkit::diff::{ask, reply_line};
use quasar_testkit::prelude::*;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Total fault-injected requests (the issue floor is 500).
const SOAK_REQUESTS: usize = 520;

/// Concurrent client threads driving the storm.
const CLIENTS: usize = 4;

/// A read that takes this long means a wedged worker — a hard failure,
/// not a tolerated fault.
const HANG_LIMIT: Duration = Duration::from_secs(20);

/// One request through the chaos proxy. `Ok(Some)` is a complete reply,
/// `Ok(None)` a connection the chaos killed first, `Err` a hang.
fn chaos_round_trip(proxy: SocketAddr, request: &str) -> Result<Option<String>, String> {
    let mut stream = match TcpStream::connect(proxy) {
        Ok(s) => s,
        Err(_) => return Ok(None), // proxy refused: treated as a killed connection
    };
    stream
        .set_read_timeout(Some(HANG_LIMIT))
        .map_err(|e| e.to_string())?;
    use std::io::{Read, Write};
    // One write; the proxy does the splitting and delaying.
    if stream.write_all(request.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
        return Ok(None);
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF. A complete reply ends in a newline; anything else
                // means the chaos cut this connection short.
                return Ok(buf
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|pos| String::from_utf8_lossy(&buf[..pos]).into_owned()));
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    return Ok(Some(String::from_utf8_lossy(&buf[..pos]).into_owned()));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(format!("request hung for {HANG_LIMIT:?}: {request}"));
            }
            Err(_) => return Ok(None), // reset by the chaos: tolerated
        }
    }
}

#[test]
fn soak_under_chaos_is_panic_free_and_byte_identical() {
    // The system under test: a real server with a real worker pool.
    let state = Arc::new(ServerState::new(
        toy_model(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    let server_addr = listener.local_addr().unwrap();
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };

    // The chaos in front of it, seeded so the storm replays identically.
    let proxy = Proxy::start(
        server_addr,
        ChaosConfig {
            seed: 20051113,
            ..ChaosConfig::default()
        },
    )
    .expect("start proxy");
    let proxy_addr = proxy.addr();

    // Fault-free expectations: what a fresh state answers directly.
    let requests = Arc::new(toy_requests());
    let oneshot = ServerState::new(toy_model(), ServeConfig::default());
    let expected: Arc<Vec<String>> =
        Arc::new(requests.iter().map(|r| reply_line(&oneshot, r)).collect());

    // The storm: CLIENTS threads, SOAK_REQUESTS total, round-robin mix.
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let requests = Arc::clone(&requests);
        let expected = Arc::clone(&expected);
        clients.push(thread::spawn(move || {
            let mut complete = 0usize;
            let mut killed = 0usize;
            for i in (c..SOAK_REQUESTS).step_by(CLIENTS) {
                let idx = i % requests.len();
                match chaos_round_trip(proxy_addr, &requests[idx]) {
                    Ok(Some(reply)) => {
                        assert_eq!(
                            reply, expected[idx],
                            "request #{i} diverged from the fault-free run: {}",
                            requests[idx]
                        );
                        complete += 1;
                    }
                    Ok(None) => killed += 1,
                    Err(hang) => panic!("worker wedged: {hang}"),
                }
            }
            (complete, killed)
        }));
    }
    let mut complete = 0usize;
    let mut killed = 0usize;
    for c in clients {
        let (ok, ko) = c.join().expect("client thread must not panic");
        complete += ok;
        killed += ko;
    }
    assert_eq!(complete + killed, SOAK_REQUESTS);

    let stats = proxy.stop();
    // The chaos must have actually happened — a seed that injects
    // nothing would make this soak a plain smoke test.
    assert!(stats.truncated > 0, "no truncations injected: {stats:?}");
    assert!(stats.dropped > 0, "no drops injected: {stats:?}");
    assert!(stats.delays > 0, "no delays injected: {stats:?}");
    assert!(
        stats.chunks > stats.connections * 4,
        "writes were not split aggressively: {stats:?}"
    );
    assert_eq!(stats.connections as usize, SOAK_REQUESTS);
    // And most traffic must still get through.
    assert!(
        complete * 2 > SOAK_REQUESTS,
        "chaos killed more than half the requests ({killed}/{SOAK_REQUESTS})"
    );
    assert!(killed > 0, "the chaos never killed a connection: {stats:?}");

    // The pool is still healthy: every request kind answers directly
    // (no proxy) with the exact fault-free bytes.
    for (req, want) in requests.iter().zip(expected.iter()) {
        let got = ask(server_addr, req).expect("direct request after the storm");
        assert_eq!(&got, want, "post-storm reply diverged for {req}");
    }

    // Zero panics anywhere: the handler-panic counter is still zero.
    let metrics = ask(server_addr, r#"{"type":"metrics"}"#).expect("metrics after the storm");
    assert!(
        metrics.contains(r#""panics_caught":0"#),
        "server caught handler panics during the soak: {metrics}"
    );

    // Graceful shutdown drains and joins within the hang limit.
    let _ = ask(server_addr, r#"{"type":"shutdown"}"#).expect("shutdown request");
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let result = server.join();
        let _ = tx.send(result.is_ok());
    });
    match rx.recv_timeout(HANG_LIMIT) {
        Ok(true) => {}
        Ok(false) => panic!("a worker thread panicked during the soak"),
        Err(_) => panic!("server failed to drain and exit within {HANG_LIMIT:?}"),
    }
}
