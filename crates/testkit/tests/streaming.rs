//! Streaming-pipeline suites: the incremental-equals-full differential
//! (a replayed update stream must yield an epoch byte-identical to an
//! offline from-scratch retrain of the same path set, at every thread
//! count), zero-downtime serve swaps under live query load, and the
//! follow-mode soak tailing a file another thread is appending to.

use quasar_core::persist::load_model;
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_stream::prelude::*;
use quasar_testkit::diff::{ask, reply_line};
use quasar_testkit::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn stream_cfg(updates: PathBuf, model_out: PathBuf, threads: usize) -> StreamConfig {
    StreamConfig {
        updates,
        model_out,
        // Half-hour record-time windows: the RIB dump lands in one
        // window, the updates spread over several more.
        window_secs: 1_800,
        threads,
        ..StreamConfig::default()
    }
}

#[test]
fn incremental_replay_is_byte_identical_to_full_retrain() {
    for seed in [71u64, 72] {
        let scenario = transition_scenario(seed, 6);
        assert!(!scenario.dirty.is_empty(), "seed {seed}: nothing perturbed");
        let dir = scratch_dir(&format!("differential-{seed}"));
        let updates = dir.join("updates.mrt");
        write_archive(&updates, &scenario.records);

        let baseline = full_retrain_artifact(
            &dataset_of(&scenario.after),
            1,
            &dir.join("baseline.quasar"),
        );

        let mut streamed_by_threads = Vec::new();
        for threads in [1usize, 4] {
            let model_out = dir.join(format!("model-t{threads}.quasar"));
            let mut pipeline =
                Pipeline::new(stream_cfg(updates.clone(), model_out.clone(), threads))
                    .expect("pipeline");
            let report = pipeline.run_file().expect("replay");
            assert!(report.source_error.is_none(), "{report:?}");
            assert!(
                report.status.windows >= 2,
                "seed {seed}: dump window + update windows, got {}",
                report.status.windows
            );
            assert!(
                report.status.incremental_windows >= 1,
                "seed {seed}: graph-preserving shifts must take the incremental path: {report:?}"
            );
            let bytes = std::fs::read(&model_out).expect("streamed artifact");
            assert_eq!(
                bytes, baseline,
                "seed {seed}, {threads} threads: streamed epoch differs from offline retrain"
            );
            streamed_by_threads.push(bytes);
        }
        assert_eq!(
            streamed_by_threads[0], streamed_by_threads[1],
            "seed {seed}: thread count changed the artifact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn delta_detector_recovers_exactly_the_perturbed_prefixes() {
    let scenario = transition_scenario(75, 8);
    let mut state = PathState::new();
    // Apply the dump (peer table + before-RIB) first; its dirt is just
    // "everything is new" and not part of the transition ground truth.
    let dump: Vec<_> = scenario
        .records
        .iter()
        .filter(|r| r.timestamp <= scenario.stream_cfg.dump_time)
        .cloned()
        .collect();
    let updates: Vec<_> = scenario
        .records
        .iter()
        .filter(|r| r.timestamp > scenario.stream_cfg.dump_time)
        .cloned()
        .collect();
    state.apply(&dump);
    let applied = state.apply(&updates);
    let got: Vec<_> = applied.dirty.iter().copied().collect();
    assert_eq!(
        got, scenario.dirty,
        "dirty set must match the perturbation ground truth exactly"
    );
    // And the final state must be the after set.
    assert_eq!(
        state.dataset().routes(),
        dataset_of(&scenario.after).routes()
    );
}

#[test]
fn live_server_keeps_answering_through_streamed_swaps() {
    let scenario = transition_scenario(73, 6);
    let dir = scratch_dir("swap");
    let updates = dir.join("updates.mrt");
    write_archive(&updates, &scenario.records);

    // The server starts on the before-set model (what `quasar train`
    // would have produced from the dump).
    let before_artifact =
        full_retrain_artifact(&dataset_of(&scenario.before), 1, &dir.join("before.quasar"));
    drop(before_artifact);
    let before_model = load_model(dir.join("before.quasar")).expect("before model");
    let state = Arc::new(ServerState::new(before_model, ServeConfig::default()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };

    // Probe a perturbed prefix: its answer is allowed to change across
    // epochs, but every reply must be a well-formed prediction.
    let probe_prefix = scenario.dirty[0];
    let observer = scenario.before[0].observer_as.0;
    let probe = format!(r#"{{"type":"predict","prefix":"{probe_prefix}","observer":{observer}}}"#);
    let before_reply = ask(addr, &probe).expect("pre-stream query");
    assert!(
        before_reply.contains(r#""type":"predict""#),
        "{before_reply}"
    );

    // Hammer the probe from a side thread for the whole replay.
    let stop = Arc::new(AtomicBool::new(false));
    let querier = {
        let stop = Arc::clone(&stop);
        let probe = probe.clone();
        thread::spawn(move || {
            let mut replies = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                replies.push(ask(addr, &probe).expect("query during swap"));
                thread::sleep(Duration::from_millis(2));
            }
            replies
        })
    };

    let model_out = dir.join("model.quasar");
    let mut pipeline = Pipeline::new(StreamConfig {
        serve_addr: Some(addr.to_string()),
        ..stream_cfg(updates, model_out.clone(), 1)
    })
    .expect("pipeline");
    let report = pipeline.run_file().expect("replay");
    stop.store(true, Ordering::Relaxed);
    let during = querier.join().expect("querier thread");

    assert!(report.source_error.is_none(), "{report:?}");
    assert!(report.status.swaps >= 1, "at least one epoch swapped in");
    assert_eq!(report.status.swaps_rejected, 0, "{report:?}");

    // Zero dropped, zero malformed answers while epochs swapped beneath
    // the clients.
    assert!(!during.is_empty());
    for reply in &during {
        assert!(
            reply.contains(r#""type":"predict""#),
            "mid-swap reply degraded: {reply}"
        );
    }

    // After the stream: the server must answer exactly like a fresh
    // server loaded with the final streamed epoch.
    let after_reply = ask(addr, &probe).expect("post-stream query");
    let final_model = load_model(&model_out).expect("final epoch loads");
    let oracle = ServerState::new(final_model, ServeConfig::default());
    assert_eq!(after_reply.trim(), reply_line(&oracle, &probe));

    // The pipeline's status is served back through metrics.
    let metrics = ask(addr, r#"{"type":"metrics"}"#).expect("metrics");
    assert!(
        metrics.contains(r#""source_done":true"#),
        "stream status must ride in metrics: {metrics}"
    );

    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn follow_mode_tails_a_concurrently_appended_file() {
    let scenario = transition_scenario(74, 5);
    let dir = scratch_dir("follow");
    let updates = dir.join("updates.mrt");
    let bytes = archive_bytes(&scenario.records);
    let total_updates = scenario
        .records
        .iter()
        .filter(|r| matches!(r.body, quasar_mrt::record::MrtBody::Bgp4mp(_)))
        .count() as u64;
    assert!(total_updates > 0);

    // Chunk boundaries at arbitrary byte offsets — the middle cuts land
    // mid-record, which is exactly what a live tail looks like.
    let cuts = [bytes.len() / 3, bytes.len() / 3 + bytes.len() / 2];
    std::fs::write(&updates, &bytes[..cuts[0]]).expect("first chunk");

    let model_out = dir.join("model.quasar");
    let pipeline_thread = {
        let cfg = StreamConfig {
            follow: true,
            poll_ms: 10,
            idle_timeout_ms: 1_500,
            ..stream_cfg(updates.clone(), model_out.clone(), 1)
        };
        thread::spawn(move || {
            let mut pipeline = Pipeline::new(cfg).expect("pipeline");
            pipeline.run_file().expect("follow replay")
        })
    };

    // Append the rest while the pipeline is live.
    for window in [&bytes[cuts[0]..cuts[1]], &bytes[cuts[1]..]] {
        thread::sleep(Duration::from_millis(150));
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&updates)
            .expect("open for append");
        f.write_all(window).expect("append chunk");
    }

    let report = pipeline_thread.join().expect("pipeline thread");
    assert!(report.source_error.is_none(), "{report:?}");
    assert!(report.status.source_done);
    assert_eq!(
        report.status.updates_total, total_updates,
        "every appended update must be ingested: {report:?}"
    );

    // Tailing must converge to the same epoch as a one-shot replay.
    let baseline = full_retrain_artifact(
        &dataset_of(&scenario.after),
        1,
        &dir.join("baseline.quasar"),
    );
    assert_eq!(std::fs::read(&model_out).expect("artifact"), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}
