//! Chaos tests for the sharded serve tier's two coordinated-failure
//! surfaces:
//!
//! 1. **Coordinated epoch reload** — the two-phase swap must be
//!    all-or-nothing: a single shard failing validation or failing the
//!    swap itself (failpoints `serve.shard.validate` /
//!    `serve.shard.swap`) rolls the whole fleet back to the old epoch,
//!    metrics report ONE generation across every shard (no torn
//!    generation), and the streaming pipeline counts the refusal as a
//!    rejected swap.
//! 2. **Shard crash containment** — a worker panic injected into one
//!    shard (`serve.shard.panic.<id>`) mid-soak turns into a typed error
//!    for that shard's slice only, while every other shard keeps
//!    answering byte-identically under full chaos-proxy fire.
//!
//! Run with `cargo test -p quasar-testkit --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::persist::{load_model, save_model};
use quasar_serve::protocol::{Request, Response};
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_serve::shard::{ShardMap, ShardedState};
use quasar_stream::prelude::*;
use quasar_testkit::diff::{ask, reply_line};
use quasar_testkit::fail;
use quasar_testkit::prelude::*;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// The registry is process-global; every test serializes on this lock
/// and disarms on exit so arm/fire sequences cannot interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn armed(seed: u64) -> Armed<'static> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fail::reset(seed);
    Armed(guard)
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        fail::clear_all();
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-shard-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The fleet's metrics snapshot, with the per-shard table.
fn fleet_metrics(state: &ShardedState) -> quasar_serve::metrics::MetricsSnapshot {
    match state.dispatch(&Request::Metrics) {
        Response::Metrics(m) => *m,
        other => panic!("metrics request failed: {other:?}"),
    }
}

/// Asserts every shard of the fleet reports exactly `generation` — the
/// "no torn generation" invariant the two-phase swap exists to uphold.
fn assert_one_generation(state: &ShardedState, generation: u64, context: &str) {
    let m = fleet_metrics(state);
    assert_eq!(m.generation, generation, "{context}: fleet generation");
    let shards = m.shards.expect("sharded metrics carry the shard table");
    assert_eq!(shards.len(), state.shards());
    for s in &shards {
        assert_eq!(
            s.generation, generation,
            "{context}: shard {} reports a torn generation (fleet at {generation})",
            s.shard
        );
    }
}

#[test]
fn validate_failure_on_one_shard_rejects_the_whole_fleet() {
    let _armed = armed(31);
    let dir = scratch("validate");
    let replacement = tiny_trained(11).model;
    let path = dir.join("next.model");
    save_model(&path, &replacement).expect("save replacement");
    let reload = Request::Reload {
        path: path.to_str().expect("utf-8 path").to_string(),
    };

    let state = ShardedState::new(toy_model(), ServeConfig::default(), 4);
    let requests = model_requests(&toy_model(), &toy_observers());
    let before: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();

    // Shard 2 (the third validate evaluation) fails its validation pass.
    fail::set("serve.shard.validate", "at3:error");
    match state.dispatch(&reload) {
        Response::Error(e) => {
            assert!(
                e.message
                    .contains("reload rejected; keeping current model: shard 2 failed validation"),
                "the refusal must name the failing shard: {}",
                e.message
            );
        }
        other => panic!("want Error reply for vetoed fleet reload, got {other:?}"),
    }

    // Nothing swapped anywhere: one generation, old answers intact.
    assert_one_generation(&state, 0, "after vetoed validate");
    assert_eq!(state.metrics().reloads(), 0);
    assert_eq!(state.metrics().reload_failures(), 1);
    let after: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();
    assert_eq!(before, after, "a vetoed reload must not change any reply");

    // Disarmed, the same artifact swaps in everywhere at once.
    fail::clear("serve.shard.validate");
    match state.dispatch(&reload) {
        Response::Reload(r) => {
            assert!(r.swapped);
            assert_eq!(r.generation, 1);
            assert_eq!(r.prefixes, replacement.prefixes().len());
        }
        other => panic!("recovery reload must swap: {other:?}"),
    }
    assert_one_generation(&state, 1, "after recovery reload");
    assert_eq!(state.metrics().reloads(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn swap_failure_mid_fleet_rolls_back_every_shard() {
    let _armed = armed(32);
    let dir = scratch("swap");
    let replacement = tiny_trained(12).model;
    let path = dir.join("next.model");
    save_model(&path, &replacement).expect("save replacement");
    let reload = Request::Reload {
        path: path.to_str().expect("utf-8 path").to_string(),
    };

    let state = ShardedState::new(toy_model(), ServeConfig::default(), 8);
    let requests = model_requests(&toy_model(), &toy_observers());
    let before: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();

    // Every shard validates fine; shard 4 fails *while the fleet is
    // already swapping* — the worst case the rollback exists for.
    fail::set("serve.shard.swap", "at5:error");
    match state.dispatch(&reload) {
        Response::Error(e) => {
            assert!(
                e.message
                    .contains("shard 4 failed to swap (all shards rolled back)"),
                "the refusal must name the failing shard and the rollback: {}",
                e.message
            );
        }
        other => panic!("want Error reply for failed fleet swap, got {other:?}"),
    }

    // Shards 0..4 had already swapped when shard 4 failed; the rollback
    // must have restored them before any lock dropped: one generation,
    // byte-identical answers, the failure counted.
    assert_one_generation(&state, 0, "after mid-fleet swap failure");
    assert_eq!(state.metrics().reloads(), 0);
    assert_eq!(state.metrics().reload_failures(), 1);
    let after: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();
    assert_eq!(
        before, after,
        "a rolled-back swap must not change any reply"
    );

    // The fleet recovers: a clean retry swaps all eight shards at once.
    fail::clear("serve.shard.swap");
    match state.dispatch(&reload) {
        Response::Reload(r) => {
            assert!(r.swapped);
            assert_eq!(r.generation, 1);
        }
        other => panic!("recovery reload must swap: {other:?}"),
    }
    assert_one_generation(&state, 1, "after recovery reload");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stream_pipeline_counts_a_refused_fleet_swap_as_rejected() {
    let _armed = armed(33);
    let scenario = transition_scenario(84, 5);
    let dir = scratch("stream");
    let updates = dir.join("updates.mrt");
    write_archive(&updates, &scenario.records);

    // A live *sharded* server on the before-set model.
    full_retrain_artifact(&dataset_of(&scenario.before), 1, &dir.join("before.quasar"));
    let before_model = load_model(&dir.join("before.quasar")).expect("before model");
    let state = Arc::new(ShardedState::new(before_model, ServeConfig::default(), 2));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };
    let probe_prefix = scenario.dirty[0];
    let observer = scenario.before[0].observer_as.0;
    let probe = format!(r#"{{"type":"predict","prefix":"{probe_prefix}","observer":{observer}}}"#);
    let before_reply = ask(addr, &probe).expect("pre-stream query");

    // Every coordinated swap dies on its first shard, server-side.
    fail::set("serve.shard.swap", "always:error");
    let mut pipeline = Pipeline::new(StreamConfig {
        updates,
        model_out: dir.join("model.quasar"),
        window_secs: 1_800,
        threads: 1,
        serve_addr: Some(addr.to_string()),
        ..StreamConfig::default()
    })
    .expect("pipeline");
    let report = pipeline.run_file().expect("replay");

    // The pipeline observed every refusal as a *rejected swap* — a
    // normal outcome it records and continues past — and never recorded
    // a served generation.
    assert!(report.source_error.is_none(), "{report:?}");
    assert_eq!(report.status.swaps, 0, "{report:?}");
    assert!(report.status.swaps_rejected >= 2, "{report:?}");
    assert_eq!(pipeline.generation(), 0, "no swap may record a generation");

    // The fleet kept the old epoch serving at generation 0 throughout,
    // and counted each refusal.
    let after_reply = ask(addr, &probe).expect("post-stream query");
    assert_eq!(before_reply, after_reply, "old fleet must keep serving");
    assert_one_generation(&state, 0, "after refused stream swaps");
    assert!(
        state.metrics().reload_failures() >= 2,
        "each refused fleet swap must be counted: {}",
        state.metrics().reload_failures()
    );
    assert_eq!(state.metrics().reloads(), 0);

    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard-crash soak constants (smaller than the main chaos soak — the
/// point here is blast radius, not volume).
const SOAK_REQUESTS: usize = 320;
const CLIENTS: usize = 4;
const SHARDS: usize = 4;
const HANG_LIMIT: Duration = Duration::from_secs(20);

/// One request through the chaos proxy (same contract as the chaos
/// soak's helper): `Ok(Some)` is a complete reply, `Ok(None)` a
/// connection the chaos killed first, `Err` a hang.
fn chaos_round_trip(proxy: SocketAddr, request: &str) -> Result<Option<String>, String> {
    let mut stream = match TcpStream::connect(proxy) {
        Ok(s) => s,
        Err(_) => return Ok(None),
    };
    stream
        .set_read_timeout(Some(HANG_LIMIT))
        .map_err(|e| e.to_string())?;
    use std::io::{Read, Write};
    if stream.write_all(request.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
        return Ok(None);
    }
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Ok(buf
                    .iter()
                    .position(|&b| b == b'\n')
                    .map(|pos| String::from_utf8_lossy(&buf[..pos]).into_owned()));
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    return Ok(Some(String::from_utf8_lossy(&buf[..pos]).into_owned()));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(format!("request hung for {HANG_LIMIT:?}: {request}"));
            }
            Err(_) => return Ok(None),
        }
    }
}

#[test]
fn shard_panic_mid_soak_poisons_only_the_owning_slice() {
    let _armed = armed(34);

    // Pick the victim: the shard owning AS3's prefix on a 4-shard fleet.
    let p3 = Prefix::for_origin(Asn(3));
    let shard_map = ShardMap::build(&toy_model(), SHARDS);
    let victim = shard_map.shard_of(p3);

    let state = Arc::new(ShardedState::new(
        toy_model(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
        SHARDS,
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    let server_addr = listener.local_addr().expect("addr");
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };
    let proxy = Proxy::start(
        server_addr,
        ChaosConfig {
            seed: 20060811,
            ..ChaosConfig::default()
        },
    )
    .expect("start proxy");
    let proxy_addr = proxy.addr();

    // The mix: predicts and explains over both prefixes, plus stats.
    // Each request is classified by whether it routes to the victim
    // shard; stats never does (it is answered off the fleet snapshot).
    let model = toy_model();
    let requests: Vec<String> = {
        let mut reqs = Vec::new();
        for observer in toy_observers() {
            for p in model.prefixes().keys() {
                reqs.push(format!(
                    r#"{{"type":"predict","prefix":"{p}","observer":{observer}}}"#
                ));
            }
        }
        for p in model.prefixes().keys() {
            reqs.push(format!(
                r#"{{"type":"explain","prefix":"{p}","observer":1}}"#
            ));
        }
        reqs.push(r#"{"type":"stats"}"#.to_string());
        reqs
    };
    let victim_slice: Vec<bool> = requests
        .iter()
        .map(|r| {
            model
                .prefixes()
                .keys()
                .any(|p| shard_map.shard_of(*p) == victim && r.contains(&format!("\"{p}\"")))
        })
        .collect();
    assert!(
        victim_slice.iter().any(|&v| v) && victim_slice.iter().any(|&v| !v),
        "the mix must cover both the victim slice and healthy slices"
    );

    // Fault-free expectations from a plain single-epoch dispatch.
    let oneshot = ServerState::new(toy_model(), ServeConfig::default());
    let expected: Arc<Vec<String>> =
        Arc::new(requests.iter().map(|r| reply_line(&oneshot, r)).collect());
    let requests = Arc::new(requests);
    let victim_slice = Arc::new(victim_slice);

    // Mid-soak crashes: roughly one in four dispatches on the victim
    // shard panics. Other shards have no armed point at all.
    fail::set(&format!("serve.shard.panic.{victim}"), "1in4:panic");

    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let requests = Arc::clone(&requests);
        let expected = Arc::clone(&expected);
        let victim_slice = Arc::clone(&victim_slice);
        clients.push(thread::spawn(move || {
            let mut healthy = 0usize;
            let mut crashed = 0usize;
            let mut killed = 0usize;
            for i in (c..SOAK_REQUESTS).step_by(CLIENTS) {
                let idx = i % requests.len();
                match chaos_round_trip(proxy_addr, &requests[idx]) {
                    Ok(Some(reply)) => {
                        if reply == expected[idx] {
                            healthy += 1;
                        } else if victim_slice[idx]
                            && reply.contains("panicked handling this request")
                        {
                            // The victim's slice may fail this once —
                            // with the typed containment error, nothing
                            // else.
                            crashed += 1;
                        } else {
                            panic!(
                                "request #{i} outside the victim slice diverged: {} -> {reply}",
                                requests[idx]
                            );
                        }
                    }
                    Ok(None) => killed += 1,
                    Err(hang) => panic!("worker wedged: {hang}"),
                }
            }
            (healthy, crashed, killed)
        }));
    }
    let (mut healthy, mut crashed, mut killed) = (0usize, 0usize, 0usize);
    for c in clients {
        let (h, cr, k) = c.join().expect("client thread must not panic");
        healthy += h;
        crashed += cr;
        killed += k;
    }
    assert_eq!(healthy + crashed + killed, SOAK_REQUESTS);
    assert!(crashed > 0, "the armed shard panic never fired");
    assert!(
        healthy * 2 > SOAK_REQUESTS,
        "most requests must still answer healthily ({healthy}/{SOAK_REQUESTS})"
    );
    let stats = proxy.stop();
    assert!(stats.connections as usize == SOAK_REQUESTS);

    // Blast radius in the metrics: every caught panic is on the victim
    // shard; every other shard's panic counter is zero.
    let m = fleet_metrics(&state);
    assert!(m.panics_caught > 0, "panics must be caught, not fatal");
    let shards = m.shards.expect("sharded metrics carry the shard table");
    for s in &shards {
        if s.shard == victim {
            assert_eq!(s.panics_caught, m.panics_caught, "all panics on the victim");
        } else {
            assert_eq!(s.panics_caught, 0, "shard {} must be untouched", s.shard);
        }
    }

    // Disarmed, the whole fleet — victim included — answers the exact
    // fault-free bytes directly.
    fail::clear(&format!("serve.shard.panic.{victim}"));
    for (req, want) in requests.iter().zip(expected.iter()) {
        let got = ask(server_addr, req).expect("direct request after the storm");
        assert_eq!(&got, want, "post-storm reply diverged for {req}");
    }

    // Graceful shutdown drains and joins within the hang limit.
    let _ = ask(server_addr, r#"{"type":"shutdown"}"#).expect("shutdown request");
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let result = server.join();
        let _ = tx.send(result.is_ok());
    });
    match rx.recv_timeout(HANG_LIMIT) {
        Ok(true) => {}
        Ok(false) => panic!("a worker thread panicked during the soak"),
        Err(_) => panic!("server failed to drain and exit within {HANG_LIMIT:?}"),
    }
}
