//! Recovery drills for the self-healing runtime (DESIGN.md §15):
//!
//! 1. **Serve-outage soak** — the server dies mid-stream and comes back
//!    as a cold replica. The pipeline must count exactly one outage,
//!    keep training and persisting through it, land a catch-up swap on
//!    recovery, and leave the replica serving an epoch byte-identical
//!    to an uninterrupted run (== the offline full retrain).
//! 2. **Quarantine → rebuild → reinstate** — repeated panics on one
//!    shard trip the quarantine threshold; the `health` verb must show
//!    every state the shard passes through (`quarantined`/`rebuilding`
//!    back to `healthy`), the victim's slice must answer typed
//!    `degraded` replies while down, and every other shard must answer
//!    byte-identically throughout.
//! 3. **Rebuild failure** — a rebuild that dies must leave the shard
//!    quarantined (never half-reinstated, never a torn fleet
//!    generation) until a coordinated reload reinstates everything.
//!
//! Run with `cargo test -p quasar-testkit --features testkit`.

#![cfg(feature = "testkit")]

use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::persist::{load_model, save_model};
use quasar_serve::protocol::{HealthReply, Request, Response};
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_serve::shard::ShardedState;
use quasar_stream::prelude::*;
use quasar_testkit::diff::{ask, reply_line};
use quasar_testkit::fail;
use quasar_testkit::prelude::*;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The failpoint registry is process-global; every test serializes on
/// this lock and disarms on exit so arm/fire sequences cannot
/// interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn armed(seed: u64) -> Armed<'static> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fail::reset(seed);
    Armed(guard)
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        fail::clear_all();
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Polls `cond` until it holds or the deadline passes.
fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// The in-process health reply of a sharded fleet.
fn health_of(state: &ShardedState) -> HealthReply {
    match state.dispatch(&Request::Health) {
        Response::Health(h) => h,
        other => panic!("health request failed: {other:?}"),
    }
}

/// The health reply of a live server, over the wire.
fn health_over_wire(addr: SocketAddr) -> HealthReply {
    let line = ask(addr, r#"{"type":"health"}"#).expect("health round trip");
    match serde_json::from_str::<Response>(&line) {
        Ok(Response::Health(h)) => h,
        other => panic!("want a health reply, got {other:?} from {line}"),
    }
}

/// Binds `addr`, retrying briefly: the previous listener's accepted
/// connections may hold the port in TIME_WAIT for a moment after a
/// graceful shutdown.
fn rebind(addr: SocketAddr) -> TcpListener {
    let t0 = Instant::now();
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return l,
            Err(e) if t0.elapsed() < Duration::from_secs(10) => {
                let _ = e;
                thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("cannot rebind {addr}: {e}"),
        }
    }
}

#[test]
fn serve_outage_mid_stream_recovers_with_a_byte_identical_catch_up_swap() {
    let _armed = armed(51);
    let scenario = transition_scenario(90, 6);
    let dir = scratch("outage");

    // Ground truth: the epoch an *uninterrupted* run would leave behind
    // is the offline full retrain of the after-set.
    let want = full_retrain_artifact(
        &dataset_of(&scenario.after),
        1,
        &dir.join("baseline.quasar"),
    );

    // Window the scenario by record time, exactly as run_file would.
    let mut windower = Windower::new(1_800, 10_000);
    let mut windows: Vec<UpdateWindow> = scenario
        .records
        .iter()
        .filter_map(|r| windower.push(r.clone()))
        .collect();
    windows.extend(windower.flush());
    assert!(
        windows.len() >= 3,
        "the drill needs pre-outage, outage and recovery windows ({} windows)",
        windows.len()
    );

    // Replica #1: a sharded fleet on the before-set model.
    full_retrain_artifact(&dataset_of(&scenario.before), 1, &dir.join("before.quasar"));
    let before_model = load_model(&dir.join("before.quasar")).expect("before model");
    let state1 = Arc::new(ShardedState::new(
        before_model.clone(),
        ServeConfig::default(),
        2,
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server1 = {
        let state = Arc::clone(&state1);
        thread::spawn(move || serve(state, listener))
    };

    let mut pipeline = Pipeline::new(StreamConfig {
        updates: dir.join("unused.mrt"),
        model_out: dir.join("model.quasar"),
        window_secs: 1_800,
        threads: 1,
        serve_addr: Some(addr.to_string()),
        max_retries: 1,
        ..StreamConfig::default()
    })
    .expect("pipeline");

    // Phase 1: the first window swaps into the live replica normally.
    pipeline.process_window(&windows[0]).expect("window 0");
    assert_eq!(pipeline.status().swaps, 1, "first epoch must swap");
    assert_eq!(pipeline.status().serve_outages, 0);
    let h = health_over_wire(addr);
    assert_eq!(h.status, "healthy");
    assert_eq!(h.generation, 1);

    // Phase 2: the replica dies. Training and persistence continue;
    // the outage is counted once, however many windows it spans.
    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    server1
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let last = windows.len() - 1;
    for w in &windows[1..last] {
        pipeline.process_window(w).expect("outage window");
    }
    assert_eq!(
        pipeline.status().serve_outages,
        1,
        "one outage, counted once: {:?}",
        pipeline.status()
    );
    assert_eq!(pipeline.status().swaps, 1, "no swap can land while down");
    assert!(
        dir.join("model.quasar").exists(),
        "epochs must persist through the outage"
    );

    // Phase 3: a cold replica comes back on the same address (fresh
    // state, stale model, generation 0) and the next window's half-open
    // probe lands the catch-up swap.
    let state2 = Arc::new(ShardedState::new(before_model, ServeConfig::default(), 2));
    let listener = rebind(addr);
    let server2 = {
        let state = Arc::clone(&state2);
        thread::spawn(move || serve(state, listener))
    };
    pipeline
        .process_window(&windows[last])
        .expect("recovery window");
    assert_eq!(
        pipeline.status().catch_up_swaps,
        1,
        "recovery must land as a catch-up swap: {:?}",
        pipeline.status()
    );
    assert_eq!(pipeline.generation(), 1, "cold replica's first swap");

    // The recovered replica serves an epoch byte-identical to the
    // uninterrupted run: artifact bytes match the offline retrain, and
    // live replies match a one-shot server loaded from that artifact.
    let got = std::fs::read(dir.join("model.quasar")).expect("streamed artifact");
    assert_eq!(
        got, want,
        "post-outage epoch must be byte-identical to the offline retrain"
    );
    let final_model = load_model(&dir.join("model.quasar")).expect("final model");
    let oneshot = ServerState::new(final_model, ServeConfig::default());
    for p in scenario.dirty.iter().take(3) {
        let observer = scenario.before[0].observer_as.0;
        let probe = format!(r#"{{"type":"predict","prefix":"{p}","observer":{observer}}}"#);
        let live = ask(addr, &probe).expect("post-recovery query");
        assert_eq!(
            live,
            reply_line(&oneshot, &probe),
            "post-recovery reply diverged for {probe}"
        );
    }

    // And the wire-visible health tells the whole story: a healthy
    // fleet at the caught-up generation, with the stream heartbeat
    // carrying the outage history.
    let h = health_over_wire(addr);
    assert_eq!(h.status, "healthy");
    assert_eq!(h.generation, 1);
    let stream = h.stream.expect("the pipeline reported after catch-up");
    assert_eq!(stream.serve_outages, 1);
    assert_eq!(stream.catch_up_swaps, 1);

    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    server2
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_rebuild_reinstate_is_visible_through_the_health_protocol() {
    let _armed = armed(52);
    let model = toy_model();
    let state = ShardedState::new(
        model.clone(),
        ServeConfig {
            quarantine_threshold: 2,
            ..ServeConfig::default()
        },
        4,
    );
    let p3 = Prefix::for_origin(Asn(3));
    let victim = state.owner_of(p3);

    // The request mix, split by which shard owns the prefix it routes
    // to, with fault-free baselines captured up front.
    let requests: Vec<String> = toy_observers()
        .iter()
        .flat_map(|o| {
            model
                .prefixes()
                .keys()
                .map(move |p| format!(r#"{{"type":"predict","prefix":"{p}","observer":{o}}}"#))
        })
        .collect();
    let on_victim: Vec<bool> = requests
        .iter()
        .map(|r| {
            model
                .prefixes()
                .keys()
                .any(|p| state.owner_of(*p) == victim && r.contains(&format!("\"{p}\"")))
        })
        .collect();
    assert!(on_victim.iter().any(|&v| v) && on_victim.iter().any(|&v| !v));
    let before: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();
    assert_eq!(health_of(&state).status, "healthy");

    // Strike the victim shard twice: threshold reached, quarantine
    // fires, and the rebuild is held visibly in-flight by the delay.
    fail::set("serve.shard.rebuild", "always:delay:500");
    fail::set(&format!("serve.shard.panic.{victim}"), "always:panic");
    let victim_req = requests
        .iter()
        .zip(&on_victim)
        .find(|(_, &v)| v)
        .map(|(r, _)| r.clone())
        .expect("a victim-slice request");
    for strike in 1..=2 {
        let reply = reply_line(&state, &victim_req);
        assert!(
            reply.contains("panicked handling this request"),
            "strike {strike} must be the typed containment error: {reply}"
        );
    }

    // The health verb tracks the shard through `rebuilding`...
    wait_until("the rebuild to start", Duration::from_secs(10), || {
        state.shard_state(victim) == "rebuilding"
    });
    let h = health_of(&state);
    assert_eq!(
        h.status, "degraded",
        "a rebuilding shard degrades the fleet"
    );
    assert_eq!(h.quarantines, 1);
    let shards = h.shards.expect("sharded health carries the shard table");
    assert_eq!(shards[victim].state, "rebuilding");

    // ...while the victim's slice answers typed `degraded` replies
    // without running dispatch work, and every other slice is
    // byte-exact.
    match state.handle_line(&victim_req) {
        Response::Degraded(d) => {
            assert_eq!(d.shard, victim);
            assert_eq!(d.state, "rebuilding");
            assert!(d.retry_after_ms > 0);
        }
        other => panic!("a quarantined slice must answer degraded, got {other:?}"),
    }
    for ((req, want), &v) in requests.iter().zip(&before).zip(&on_victim) {
        if !v {
            assert_eq!(
                &reply_line(&state, req),
                want,
                "healthy slice diverged: {req}"
            );
        }
    }

    // Disarm the crash and let the rebuild finish: the shard comes back
    // healthy at the fleet generation with its strikes cleared, and the
    // whole mix — victim slice included — answers the original bytes.
    fail::clear(&format!("serve.shard.panic.{victim}"));
    wait_until("the shard to reinstate", Duration::from_secs(10), || {
        state.shard_state(victim) == "healthy"
    });
    let h = health_of(&state);
    assert_eq!(h.status, "healthy");
    assert_eq!((h.quarantines, h.rebuilds, h.rebuild_failures), (1, 1, 0));
    let shards = h.shards.expect("shard table");
    assert_eq!(shards[victim].strikes, 0, "reinstatement clears strikes");
    assert_eq!(
        shards[victim].generation, 0,
        "reinstated at the fleet generation"
    );
    let after: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();
    assert_eq!(
        before, after,
        "a rebuilt shard must answer the exact old bytes"
    );
}

#[test]
fn failed_rebuild_keeps_the_shard_quarantined_until_a_fleet_reload() {
    let _armed = armed(53);
    let dir = scratch("rebuild-fail");
    let model = toy_model();
    let state = ShardedState::new(model.clone(), ServeConfig::default(), 4);
    let p3 = Prefix::for_origin(Asn(3));
    let victim = state.owner_of(p3);
    let requests = model_requests(&model, &toy_observers());
    let before: Vec<String> = requests.iter().map(|r| reply_line(&state, r)).collect();

    // Every rebuild dies. The drill hook quarantines the victim the way
    // the strike counter would.
    fail::set("serve.shard.rebuild", "always:error");
    assert!(state.quarantine_shard(victim), "first quarantine wins");
    wait_until("the rebuild to fail", Duration::from_secs(10), || {
        state.metrics().rebuild_failures() >= 1
    });
    assert_eq!(state.shard_state(victim), "quarantined");
    assert!(
        !state.quarantine_shard(victim),
        "a quarantined shard must not spawn a second rebuild"
    );

    // Health says exactly that; the fleet generation is not torn.
    let h = health_of(&state);
    assert_eq!(h.status, "degraded");
    assert_eq!((h.quarantines, h.rebuilds, h.rebuild_failures), (1, 0, 1));
    let shards = h.shards.expect("shard table");
    assert_eq!(shards[victim].state, "quarantined");
    for s in &shards {
        assert_eq!(s.generation, 0, "shard {}: torn generation", s.shard);
    }

    // The victim's slice degrades with a retry hint; every other
    // shard's replies are byte-identical to the fault-free run.
    let probe = format!(r#"{{"type":"predict","prefix":"{p3}","observer":1}}"#);
    match state.handle_line(&probe) {
        Response::Degraded(d) => {
            assert_eq!((d.shard, d.state.as_str()), (victim, "quarantined"));
            assert!(d.retry_after_ms > 0);
        }
        other => panic!("want degraded from the quarantined slice, got {other:?}"),
    }
    let mut degraded = 0usize;
    for (req, want) in requests.iter().zip(&before) {
        let got = reply_line(&state, req);
        if &got == want {
            continue;
        }
        match serde_json::from_str::<Response>(&got) {
            Ok(Response::Degraded(d)) => {
                assert_eq!(
                    (d.shard, d.state.as_str()),
                    (victim, "quarantined"),
                    "only the victim slice may degrade: {req}"
                );
                degraded += 1;
            }
            other => panic!("non-degraded divergence for {req}: {other:?}"),
        }
    }
    assert!(
        degraded > 0,
        "the quarantined slice must actually be exercised"
    );

    // A coordinated fleet reload is the recovery of last resort: it
    // swaps every shard at once and reinstates the quarantined one.
    let replacement = tiny_trained(13).model;
    let path = dir.join("next.model");
    save_model(&path, &replacement).expect("save replacement");
    match state.dispatch(&Request::Reload {
        path: path.to_str().expect("utf-8 path").to_string(),
    }) {
        Response::Reload(r) => {
            assert!(r.swapped);
            assert_eq!(r.generation, 1);
        }
        other => panic!("fleet reload must swap: {other:?}"),
    }
    let h = health_of(&state);
    assert_eq!(h.status, "healthy", "the reload reinstates every shard");
    assert_eq!(h.generation, 1);
    for s in &h.shards.expect("shard table") {
        assert_eq!((s.state.as_str(), s.strikes), ("healthy", 0));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
