//! End-to-end failpoint tests across the stack: faults armed in the
//! shared registry must surface as typed errors (never panics) from the
//! simulation engine, the refinement loop, and the server dispatch path,
//! and delay-only faults must never change any result.
//!
//! Run with `cargo test -p quasar-testkit --features testkit`.

#![cfg(feature = "testkit")]

use quasar_core::refine::{refine, RefineConfig};
use quasar_serve::server::{ServeConfig, ServerState};
use quasar_testkit::fail;
use quasar_testkit::prelude::*;
use std::sync::Mutex;

/// The registry is process-global; every test serializes on this lock
/// and disarms on exit so arm/fire sequences cannot interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn armed(seed: u64) -> Armed<'static> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fail::reset(seed);
    Armed(guard)
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        fail::clear_all();
    }
}

#[test]
fn engine_error_injection_surfaces_as_typed_error() {
    let _armed = armed(1);
    let model = toy_model();
    let prefix = *model.prefixes().keys().next().expect("model has prefixes");

    fail::set("engine.simulate", "always:error");
    let err = model.simulate(prefix).expect_err("armed point must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("engine.simulate"),
        "error must name the failpoint: {msg}"
    );

    fail::clear("engine.simulate");
    model
        .simulate(prefix)
        .expect("disarmed point must succeed again");
}

#[test]
fn server_predict_reports_injected_simulation_failure() {
    let _armed = armed(2);
    let state = ServerState::new(toy_model(), ServeConfig::default());
    let req = &toy_requests()[0]; // first predict of the canonical mix

    fail::set("engine.simulate", "always:error");
    let reply = quasar_testkit::diff::reply_line(&state, req);
    assert!(
        reply.contains(r#""type":"error""#) && reply.contains("simulation failed"),
        "injected engine fault must become an error reply: {reply}"
    );

    // The steady-state cache memoizes errors too, so a fresh state is
    // the honest way to check recovery after disarming.
    fail::clear("engine.simulate");
    let fresh = ServerState::new(toy_model(), ServeConfig::default());
    let reply = quasar_testkit::diff::reply_line(&fresh, req);
    assert!(
        !reply.contains(r#""type":"error""#),
        "disarmed predict must succeed: {reply}"
    );
}

#[test]
fn dispatch_failpoint_turns_any_request_into_an_error_reply() {
    let _armed = armed(3);
    let state = ServerState::new(toy_model(), ServeConfig::default());
    fail::set("serve.handle_line", "1in2:error");
    let mut injected = 0;
    let mut clean = 0;
    for req in toy_requests().iter().cycle().take(40) {
        let reply = quasar_testkit::diff::reply_line(&state, req);
        if reply.contains("failpoint serve.handle_line") {
            injected += 1;
        } else {
            clean += 1;
        }
    }
    assert!(injected > 0, "a 1in2 point must fire within 40 requests");
    assert!(clean > 0, "a 1in2 point must also not fire sometimes");
    assert_eq!(fail::evaluations("serve.handle_line"), 40);
    assert_eq!(fail::fired("serve.handle_line"), injected);
}

#[test]
fn refinement_is_identical_under_injected_scheduling_jitter() {
    let _armed = armed(4);
    let fx = tiny_trained(101);
    let baseline = fx.model.to_json().expect("model serializes");

    // Delay-only faults perturb worker timing, not results: a jittered
    // 4-thread refinement must still be byte-identical to the clean
    // sequential baseline.
    fail::set("refine.simulate_batch", "1in3:delay:2");
    fail::set("refine.apply_fix", "1in5:delay:1");
    let cfg = RefineConfig {
        threads: 4,
        ..RefineConfig::default()
    };
    let mut jittered =
        quasar_core::model::AsRoutingModel::initial(&fx.full.as_graph(), &fx.full.prefixes());
    refine(&mut jittered, &fx.training, &cfg).expect("jittered refinement runs");
    assert!(
        fail::fired("refine.simulate_batch") > 0,
        "the jitter point must actually have fired"
    );
    assert_eq!(
        jittered.to_json().expect("model serializes"),
        baseline,
        "scheduling jitter changed the refined model"
    );
}

#[test]
fn refinement_propagates_injected_engine_errors() {
    let _armed = armed(5);
    let fx = tiny_trained(101);
    fail::set("engine.simulate", "once:error");
    let cfg = RefineConfig {
        threads: 2,
        ..RefineConfig::default()
    };
    let mut model =
        quasar_core::model::AsRoutingModel::initial(&fx.full.as_graph(), &fx.full.prefixes());
    let err = refine(&mut model, &fx.training, &cfg)
        .expect_err("an injected simulation error must fail refinement");
    assert!(
        err.to_string().contains("engine.simulate"),
        "refinement must surface the injected fault, got: {err}"
    );
}

#[test]
fn one_in_n_schedule_is_stable_across_resets_with_same_seed() {
    let _armed = armed(77);
    fail::set("engine.simulate", "1in4:error");
    let model = toy_model();
    let prefix = *model.prefixes().keys().next().unwrap();
    let run = |n: usize| -> Vec<bool> { (0..n).map(|_| model.simulate(prefix).is_err()).collect() };
    let first = run(32);

    fail::reset(77);
    fail::set("engine.simulate", "1in4:error");
    let second = run(32);
    assert_eq!(first, second, "same seed must replay the same schedule");

    fail::reset(78);
    fail::set("engine.simulate", "1in4:error");
    let third = run(32);
    assert_ne!(first, third, "a different seed must reshuffle the schedule");
    assert!(first.iter().any(|&x| x) && first.iter().any(|&x| !x));
}
