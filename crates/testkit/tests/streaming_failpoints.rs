//! Fault injection against the streaming pipeline: an ingest fault must
//! end the stream gracefully (windows already processed stay served), a
//! panic mid-window must be resumable from the persisted trainer cache
//! with a byte-identical final epoch, and a rejected reload must leave
//! the old model serving while the pipeline carries on.
//!
//! Run with `cargo test -p quasar-testkit --features testkit`.

#![cfg(feature = "testkit")]

use quasar_core::persist::load_model;
use quasar_serve::server::{serve, ServeConfig, ServerState};
use quasar_stream::prelude::*;
use quasar_testkit::diff::ask;
use quasar_testkit::fail;
use quasar_testkit::prelude::*;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread;

/// The registry is process-global; every test serializes on this lock
/// and disarms on exit so arm/fire sequences cannot interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

fn armed(seed: u64) -> Armed<'static> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fail::reset(seed);
    Armed(guard)
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        fail::clear_all();
    }
}

fn stream_cfg(updates: PathBuf, model_out: PathBuf) -> StreamConfig {
    StreamConfig {
        updates,
        model_out,
        window_secs: 1_800,
        threads: 1,
        ..StreamConfig::default()
    }
}

#[test]
fn ingest_fault_ends_the_stream_gracefully() {
    let _armed = armed(11);
    let scenario = transition_scenario(81, 4);
    let dir = scratch_dir("fp-ingest");
    let updates = dir.join("updates.mrt");
    write_archive(&updates, &scenario.records);

    fail::set("stream.ingest", "once:error");
    let mut pipeline =
        Pipeline::new(stream_cfg(updates.clone(), dir.join("model.quasar"))).expect("pipeline");
    let report = pipeline
        .run_file()
        .expect("graceful degradation, not an error");
    let err = report.source_error.expect("fault must be reported");
    assert!(err.contains("stream.ingest"), "{err}");
    assert_eq!(report.status.windows, 0, "fault fired before any read");

    // Disarmed, the same file replays fully.
    fail::clear("stream.ingest");
    let mut pipeline =
        Pipeline::new(stream_cfg(updates, dir.join("model2.quasar"))).expect("pipeline");
    let report = pipeline.run_file().expect("clean replay");
    assert!(report.source_error.is_none());
    assert!(report.status.windows >= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_mid_window_resumes_to_a_byte_identical_epoch() {
    let _armed = armed(12);
    let scenario = transition_scenario(82, 6);
    let dir = scratch_dir("fp-resume");
    let updates = dir.join("updates.mrt");
    write_archive(&updates, &scenario.records);
    let baseline = full_retrain_artifact(
        &dataset_of(&scenario.after),
        1,
        &dir.join("baseline.quasar"),
    );

    // First attempt: the second window's processing panics. Window 1 has
    // already trained and persisted its trainer cache to the state dir.
    fail::set("stream.window", "at2:panic");
    let model_out = dir.join("model.quasar");
    let state_dir = dir.join("state");
    let cfg = StreamConfig {
        state_dir: Some(state_dir.clone()),
        ..stream_cfg(updates.clone(), model_out.clone())
    };
    let crashed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut pipeline = Pipeline::new(cfg.clone()).expect("pipeline");
        pipeline.run_file().map(|r| r.status.windows)
    }));
    assert!(crashed.is_err(), "the armed panic must fire: {crashed:?}");

    // Resume: a fresh process (here, a fresh pipeline) picks the trainer
    // cache back up and replays the file to the exact same epoch.
    fail::clear("stream.window");
    let mut pipeline = Pipeline::new(cfg).expect("resumed pipeline");
    let report = pipeline.run_file().expect("resumed replay");
    assert!(report.source_error.is_none(), "{report:?}");
    // The first retrain after resume sees a dataset identical to the
    // cached one for the replayed dump window — proof the cache survived
    // the crash is that the trainer takes a reuse path, not `initial`.
    let first_trained = report
        .windows
        .iter()
        .find(|w| w.mode != "no_change")
        .expect("something trains on resume");
    assert!(
        first_trained.mode.starts_with("incremental"),
        "resume must reuse the persisted cache: {report:?}"
    );
    assert_eq!(
        std::fs::read(&model_out).expect("resumed artifact"),
        baseline,
        "crash + resume changed the epoch bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rejected_reloads_leave_the_old_model_serving() {
    let _armed = armed(13);
    let scenario = transition_scenario(83, 5);
    let dir = scratch_dir("fp-reject");
    let updates = dir.join("updates.mrt");
    write_archive(&updates, &scenario.records);

    // Live server on the before-set model.
    full_retrain_artifact(&dataset_of(&scenario.before), 1, &dir.join("before.quasar"));
    let before_model = load_model(&dir.join("before.quasar")).expect("before model");
    let state = Arc::new(ServerState::new(before_model, ServeConfig::default()));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let state = Arc::clone(&state);
        thread::spawn(move || serve(state, listener))
    };
    let probe_prefix = scenario.dirty[0];
    let observer = scenario.before[0].observer_as.0;
    let probe = format!(r#"{{"type":"predict","prefix":"{probe_prefix}","observer":{observer}}}"#);
    let before_reply = ask(addr, &probe).expect("pre-stream query");

    // Every swap is forced down the rejection path.
    fail::set("stream.reload", "always:error");
    let mut pipeline = Pipeline::new(StreamConfig {
        serve_addr: Some(addr.to_string()),
        ..stream_cfg(updates, dir.join("model.quasar"))
    })
    .expect("pipeline");
    let report = pipeline.run_file().expect("replay");

    assert!(report.source_error.is_none(), "{report:?}");
    assert_eq!(report.status.swaps, 0, "{report:?}");
    assert!(report.status.swaps_rejected >= 2, "{report:?}");

    // The server never saw a swapped epoch: identical answers, and its
    // reload counter never moved.
    let after_reply = ask(addr, &probe).expect("post-stream query");
    assert_eq!(before_reply, after_reply, "old model must keep serving");
    let metrics = ask(addr, r#"{"type":"metrics"}"#).expect("metrics");
    assert!(
        metrics_reload_count_is_zero(&metrics),
        "no reload request may reach the server: {metrics}"
    );
    // Progress reports still flowed despite every rejection.
    assert!(metrics.contains(r#""swaps_rejected""#), "{metrics}");

    let _ = ask(addr, r#"{"type":"shutdown"}"#);
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses the metrics snapshot and checks the `reload` bucket count is 0.
fn metrics_reload_count_is_zero(metrics: &str) -> bool {
    let Ok(resp) = serde_json::from_str::<quasar_serve::protocol::Response>(metrics.trim()) else {
        return false;
    };
    match resp {
        quasar_serve::protocol::Response::Metrics(m) => m
            .requests
            .iter()
            .find(|(kind, _)| kind == "reload")
            .map(|(_, lat)| lat.count == 0)
            .unwrap_or(true),
        _ => false,
    }
}
