//! Regression lock between the chaos suites and the analyzer's failpoint
//! registry: every name the big fault-injection tests arm or clear must
//! resolve to a real inject site somewhere in the workspace. This is the
//! same reconciliation `quasar sast` (QS0003) performs over the whole
//! repo, pinned here to the three suites that drive recovery drills so a
//! renamed site breaks loudly in the testkit job too.

use quasar_sast::collect_workspace;
use quasar_sast::lexer::lex;
use quasar_sast::rules::failpoints::{patterns_overlap, refs_in, sites_in, FailName};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every inject site in the workspace, extracted exactly as QS0003 does.
fn registry() -> Vec<FailName> {
    let files = collect_workspace(&workspace_root()).expect("walk workspace");
    let mut sites = Vec::new();
    for f in &files {
        sites.extend(sites_in(f, &lex(&f.text)));
    }
    assert!(
        !sites.is_empty(),
        "the workspace defines failpoint sites; extraction must find them"
    );
    sites
}

#[test]
fn chaos_suite_failpoint_refs_are_a_subset_of_the_registry() {
    let sites = registry();
    let files = collect_workspace(&workspace_root()).expect("walk workspace");
    let suites = [
        "crates/testkit/tests/recovery.rs",
        "crates/testkit/tests/streaming_failpoints.rs",
        "crates/testkit/tests/shard_chaos.rs",
    ];
    for suite in suites {
        let file = files
            .iter()
            .find(|f| f.path == suite)
            .unwrap_or_else(|| panic!("suite {suite} must exist in the workspace walk"));
        let refs = refs_in(file, &lex(&file.text), false);
        assert!(
            !refs.is_empty(),
            "{suite} is a fault-injection suite; it must reference failpoints"
        );
        for r in &refs {
            assert!(
                sites
                    .iter()
                    .any(|s| patterns_overlap(&s.pattern, &r.pattern)),
                "{}:{} arms `{}` but no inject site in the workspace defines it",
                r.file,
                r.line,
                r.pattern
            );
        }
    }
}

#[test]
fn registry_covers_the_documented_subsystems() {
    // The registry spans persistence, refinement, serving, and streaming;
    // a refactor that silently drops a whole subsystem's instrumentation
    // should fail here before the chaos suites start passing vacuously.
    let sites = registry();
    for prefix in ["persist.", "refine.", "serve.", "stream."] {
        assert!(
            sites.iter().any(|s| s.pattern.starts_with(prefix)),
            "no inject site under `{prefix}*` — did a subsystem lose its instrumentation?"
        );
    }
}
