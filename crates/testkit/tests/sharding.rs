//! The sharding differential suite: a prefix-sharded server must answer
//! every protocol verb byte-identically to a plain single-epoch server
//! over the same model. No feature gate — this is pure differential
//! testing, no fault injection.
//!
//! Three layers:
//!
//! 1. a deterministic matrix of trained models (seeds) × shard counts
//!    {1, 2, 4, 8} driven through [`model_requests`] — every verb, every
//!    error case, and multi-prefix diffs whose explicit lists are
//!    unsorted and duplicated (so the merged reply order is exercised);
//! 2. a proptest over random observed-route sets and random op
//!    sequences, comparing a plain server against a sharded one with a
//!    random shard count;
//! 3. an end-to-end TCP run: a real `serve()` over a 4-shard state vs a
//!    fresh one-shot dispatch per request.

use proptest::prelude::*;
use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::model::AsRoutingModel;
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_serve::server::{ServeConfig, ServerState};
use quasar_serve::shard::ShardedState;
use quasar_testkit::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Observer ASNs actually present in a trained fixture's dataset, in
/// deterministic order.
fn observers_of(dataset: &Dataset) -> Vec<u32> {
    dataset
        .routes()
        .iter()
        .map(|r| r.observer_as.0)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

#[test]
fn sharded_toy_model_matches_plain_server_for_every_shard_count() {
    let model = toy_model();
    let requests = {
        let mut reqs = toy_requests();
        reqs.extend(model_requests(&model, &toy_observers()));
        reqs
    };
    let plain = ServerState::new(model.clone(), ServeConfig::default());
    for shards in SHARD_COUNTS {
        let sharded = ShardedState::new(model.clone(), ServeConfig::default(), shards);
        states_differential(
            &format!("toy model: plain vs {shards}-shard"),
            &plain,
            &sharded,
            &requests,
        )
        .unwrap_or_else(|d| panic!("{d}"));
    }
}

#[test]
fn sharded_trained_models_match_plain_server_across_seeds() {
    for seed in [11, 47, 2006] {
        let fx = tiny_trained(seed);
        let observers = observers_of(&fx.full);
        let requests = model_requests(&fx.model, &observers);
        assert!(
            requests.len() > 8,
            "seed {seed}: workload should cover the verb space"
        );
        let plain = ServerState::new(fx.model.clone(), ServeConfig::default());
        let one = ShardedState::new(fx.model.clone(), ServeConfig::default(), 1);
        for shards in SHARD_COUNTS {
            let sharded = ShardedState::new(fx.model.clone(), ServeConfig::default(), shards);
            states_differential(
                &format!("seed {seed}: plain vs {shards}-shard"),
                &plain,
                &sharded,
                &requests,
            )
            .unwrap_or_else(|d| panic!("{d}"));
            states_differential(
                &format!("seed {seed}: 1-shard vs {shards}-shard"),
                &one,
                &sharded,
                &requests,
            )
            .unwrap_or_else(|d| panic!("{d}"));
        }
    }
}

#[test]
fn multi_prefix_diff_replies_merge_in_deterministic_prefix_order() {
    // A whole-model diff fans out across every shard; the merged impact
    // list must be in ascending prefix order — the same order the plain
    // server produces — and repeated runs must be byte-stable.
    let fx = tiny_trained(7);
    let origins: Vec<u32> = fx.model.prefixes().values().map(|a| a.0).collect();
    let (a, b) = (origins[0], origins[origins.len() - 1]);
    let req = format!(r#"{{"type":"diff","changes":[{{"action":"depeer","a":{a},"b":{b}}}]}}"#);
    let plain = ServerState::new(fx.model.clone(), ServeConfig::default());
    let want = reply_line(&plain, &req);
    for shards in SHARD_COUNTS {
        let sharded = ShardedState::new(fx.model.clone(), ServeConfig::default(), shards);
        let first = reply_line(&sharded, &req);
        let second = reply_line(&sharded, &req);
        assert_eq!(first, want, "{shards}-shard merge order diverged");
        assert_eq!(first, second, "{shards}-shard replay not byte-stable");
    }
}

#[test]
fn sharded_server_over_tcp_matches_oneshot_dispatch() {
    let model = toy_model();
    let mut requests = toy_requests();
    requests.extend(model_requests(&model, &toy_observers()));
    sharded_vs_oneshot(&model, 4, &requests).unwrap_or_else(|d| panic!("{d}"));
}

/// Random loop-free observed-route sets over a small AS universe (the
/// same shape the serve crate's proptests use).
fn arb_routes() -> impl Strategy<Value = Vec<ObservedRoute>> {
    proptest::collection::vec(
        (
            0u32..4,                                   // observation point
            proptest::collection::vec(1u32..10, 1..4), // walk
            1u32..10,                                  // origin AS
        ),
        1..15,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(point, mut walk, origin)| {
                walk.retain(|&a| a != origin);
                walk.push(origin);
                let mut seen = std::collections::BTreeSet::new();
                walk.retain(|&a| seen.insert(a));
                ObservedRoute {
                    point,
                    observer_as: Asn(walk[0]),
                    prefix: Prefix::for_origin(Asn(origin)),
                    as_path: AsPath::from_u32s(&walk),
                }
            })
            .collect()
    })
}

/// A raw request line to throw at both servers: predicts, explains,
/// diffs with arbitrary (possibly unsorted/duplicated/invalid) prefix
/// lists, and stats.
fn arb_request_lines() -> impl Strategy<Value = Vec<RequestSpec>> {
    let predict = (0usize..64, 0usize..64).prop_map(|(p, o)| RequestSpec::Predict(p, o));
    let explain = (0usize..64, 0usize..64).prop_map(|(p, o)| RequestSpec::Explain(p, o));
    let diff = (
        proptest::collection::vec((0u8..3, 1u32..10, 1u32..10), 1..3),
        proptest::option::of(proptest::collection::vec(0usize..80, 0..6)),
    )
        .prop_map(|(changes, prefixes)| RequestSpec::Diff { changes, prefixes });
    let stats = Just(RequestSpec::Stats);
    proptest::collection::vec(prop_oneof![predict, explain, diff, stats], 1..12)
}

#[derive(Debug, Clone)]
enum RequestSpec {
    Predict(usize, usize),
    Explain(usize, usize),
    Diff {
        changes: Vec<(u8, u32, u32)>,
        /// Indices into the prefix list; indices past the end become a
        /// deliberately-unknown prefix so error replies are compared too.
        prefixes: Option<Vec<usize>>,
    },
    Stats,
}

fn render(spec: &RequestSpec, prefixes: &[Prefix], ases: &[Asn]) -> String {
    let prefix_at = |i: usize| {
        if i < prefixes.len() * 2 {
            prefixes[i % prefixes.len()].to_string()
        } else {
            "198.51.100.0/24".to_string() // unknown on purpose
        }
    };
    match spec {
        RequestSpec::Predict(p, o) => format!(
            r#"{{"type":"predict","prefix":"{}","observer":{}}}"#,
            prefix_at(*p),
            ases[o % ases.len()].0
        ),
        RequestSpec::Explain(p, o) => format!(
            r#"{{"type":"explain","prefix":"{}","observer":{}}}"#,
            prefix_at(*p),
            ases[o % ases.len()].0
        ),
        RequestSpec::Diff { changes, prefixes } => {
            let change_json: Vec<String> = changes
                .iter()
                .map(|&(kind, a, b)| match kind {
                    0 => format!(r#"{{"action":"depeer","a":{a},"b":{b}}}"#),
                    1 => format!(r#"{{"action":"add_peering","a":{a},"b":{b}}}"#),
                    _ => format!(
                        r#"{{"action":"filter_prefix","asn":{a},"neighbor":{b},"prefix":"{}"}}"#,
                        prefix_at(a as usize)
                    ),
                })
                .collect();
            match prefixes {
                None => format!(r#"{{"type":"diff","changes":[{}]}}"#, change_json.join(",")),
                Some(idxs) => {
                    let list: Vec<String> = idxs
                        .iter()
                        .map(|&i| format!("\"{}\"", prefix_at(i)))
                        .collect();
                    format!(
                        r#"{{"type":"diff","changes":[{}],"prefixes":[{}]}}"#,
                        change_json.join(","),
                        list.join(",")
                    )
                }
            }
        }
        RequestSpec::Stats => r#"{"type":"stats"}"#.to_string(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: for ANY model, ANY request sequence, and
    /// ANY shard count, the sharded server's reply stream is
    /// byte-identical to the plain single-epoch server's.
    #[test]
    fn any_request_sequence_is_shard_count_invariant(
        routes in arb_routes(),
        specs in arb_request_lines(),
        shards in 1usize..9,
    ) {
        let d = Dataset::new(routes);
        if d.is_empty() {
            return Ok(());
        }
        let model = AsRoutingModel::initial(&d.as_graph(), &d.prefixes());
        let prefixes: Vec<Prefix> = model.prefixes().keys().copied().collect();
        let ases: Vec<Asn> = d
            .routes()
            .iter()
            .map(|r| r.observer_as)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        if prefixes.is_empty() || ases.is_empty() {
            return Ok(());
        }
        let lines: Vec<String> = specs.iter().map(|s| render(s, &prefixes, &ases)).collect();
        let plain = ServerState::new(model.clone(), ServeConfig::default());
        let sharded = ShardedState::new(model, ServeConfig::default(), shards);
        for line in &lines {
            let l = reply_line(&plain, line);
            let r = reply_line(&sharded, line);
            prop_assert_eq!(
                &l, &r,
                "plain vs {}-shard diverged on {}", shards, line
            );
        }
    }
}
