//! Differential test harness: run the same question through two paths
//! that must agree, and if they do not, report the *first diverging
//! field* by JSON path (`$.routes[3].as_path[1]`) instead of dumping two
//! multi-kilobyte documents side by side.
//!
//! The comparisons the workspace cares about:
//!
//! - sequential vs parallel refinement ([`refine_differential`]),
//! - a live server vs a fresh one-shot dispatch ([`served_vs_oneshot`]),
//! - a sharded server vs a fresh one-shot dispatch
//!   ([`sharded_vs_oneshot`]),
//! - a JSON-round-tripped model vs the in-memory original
//!   ([`roundtrip_differential`]),
//! - any two [`ServeHandler`]s answering the same request mix
//!   ([`states_differential`] — a plain [`ServerState`] and a
//!   [`ShardedState`] compare directly).
//!
//! Everything reduces to [`first_divergence`] over the vendored serde
//! [`Content`] tree, which `serde_json::parse` produces for any JSON
//! document.

use quasar_core::model::AsRoutingModel;
use quasar_core::observed::Dataset;
use quasar_core::refine::{refine, RefineConfig};
use quasar_serve::server::{serve, ServeConfig, ServeHandler, ServerState};
use quasar_serve::shard::ShardedState;
use serde::Content;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The first point where two executions disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Which comparison was running (human label, e.g. `"refine threads=1
    /// vs threads=4"`).
    pub context: String,
    /// JSON path to the first diverging field, `$` rooted.
    pub path: String,
    /// Rendering of the left side at `path`.
    pub left: String,
    /// Rendering of the right side at `path`.
    pub right: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: first divergence at {}\n  left:  {}\n  right: {}",
            self.context, self.path, self.left, self.right
        )
    }
}

/// Compact single-line rendering of a content subtree for messages.
fn brief(c: &Content) -> String {
    let full = match c {
        Content::Null => "null".to_string(),
        Content::Bool(b) => b.to_string(),
        Content::U64(n) => n.to_string(),
        Content::I64(n) => n.to_string(),
        Content::F64(x) => format!("{x:?}"),
        Content::Str(s) => format!("{s:?}"),
        Content::Seq(items) => format!("<array of {}>", items.len()),
        Content::Map(entries) => format!("<object with {} fields>", entries.len()),
    };
    if full.len() > 120 {
        format!("{}…", &full[..120])
    } else {
        full
    }
}

fn key_name(k: &Content) -> String {
    match k {
        Content::Str(s) => s.clone(),
        other => brief(other),
    }
}

/// Walks two content trees in lockstep and returns the first place they
/// differ, or `None` if they are identical. Object fields are compared
/// in serialization order (the vendored serde emits deterministic,
/// sorted output, so order differences are real differences).
pub fn first_divergence(context: &str, left: &Content, right: &Content) -> Option<Divergence> {
    fn walk(path: &mut String, l: &Content, r: &Content) -> Option<(String, String, String)> {
        match (l, r) {
            (Content::Seq(ls), Content::Seq(rs)) => {
                for (i, (le, re)) in ls.iter().zip(rs.iter()).enumerate() {
                    let len = path.len();
                    path.push_str(&format!("[{i}]"));
                    if let Some(d) = walk(path, le, re) {
                        return Some(d);
                    }
                    path.truncate(len);
                }
                if ls.len() != rs.len() {
                    return Some((
                        format!("{path}.length"),
                        ls.len().to_string(),
                        rs.len().to_string(),
                    ));
                }
                None
            }
            (Content::Map(lm), Content::Map(rm)) => {
                for (i, ((lk, lv), (rk, rv))) in lm.iter().zip(rm.iter()).enumerate() {
                    if lk != rk {
                        return Some((format!("{path}.<key #{i}>"), key_name(lk), key_name(rk)));
                    }
                    let len = path.len();
                    path.push('.');
                    path.push_str(&key_name(lk));
                    if let Some(d) = walk(path, lv, rv) {
                        return Some(d);
                    }
                    path.truncate(len);
                }
                if lm.len() != rm.len() {
                    return Some((
                        format!("{path}.<field count>"),
                        lm.len().to_string(),
                        rm.len().to_string(),
                    ));
                }
                None
            }
            _ if l == r => None,
            _ => Some((path.clone(), brief(l), brief(r))),
        }
    }
    let mut path = String::from("$");
    walk(&mut path, left, right).map(|(path, left, right)| Divergence {
        context: context.to_string(),
        path,
        left,
        right,
    })
}

/// Parses two JSON documents and reports their first divergence.
/// Unparseable input is itself reported as a divergence at `$` so the
/// caller always gets a location.
pub fn diff_json(context: &str, left: &str, right: &str) -> Option<Divergence> {
    if left == right {
        return None;
    }
    match (serde_json::parse(left), serde_json::parse(right)) {
        (Ok(l), Ok(r)) => first_divergence(context, &l, &r).or_else(|| {
            // Semantically equal but textually different: a formatting
            // bug worth reporting at the root.
            Some(Divergence {
                context: context.to_string(),
                path: "$.<serialized form>".to_string(),
                left: left.to_string(),
                right: right.to_string(),
            })
        }),
        (l, r) => Some(Divergence {
            context: context.to_string(),
            path: "$.<parse>".to_string(),
            left: l.err().map_or("ok".to_string(), |e| e.to_string()),
            right: r.err().map_or("ok".to_string(), |e| e.to_string()),
        }),
    }
}

/// Trains a fresh model from `full`/`training` with the given thread
/// count and returns `(model_json, per_prefix_report)`.
fn train(full: &Dataset, training: &Dataset, threads: usize) -> Result<(String, String), String> {
    let cfg = RefineConfig {
        threads,
        ..RefineConfig::default()
    };
    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    let report = refine(&mut model, training, &cfg).map_err(|e| e.to_string())?;
    let stats: Vec<String> = report
        .prefixes
        .iter()
        .map(|p| {
            format!(
                r#"{{"prefix":"{}","iterations":{},"converged":{},"added":{}}}"#,
                p.prefix, p.iterations, p.converged, p.quasi_routers_added
            )
        })
        .collect();
    let report_json = format!("[{}]", stats.join(","));
    let model_json = model.to_json().map_err(|e| e.to_string())?;
    Ok((model_json, report_json))
}

/// Refines the same dataset sequentially and at each of `thread_counts`,
/// and demands byte-identical models *and* per-prefix reports.
pub fn refine_differential(
    full: &Dataset,
    training: &Dataset,
    thread_counts: &[usize],
) -> Result<(), Divergence> {
    let (base_model, base_report) = train(full, training, 1).map_err(root_err)?;
    for &threads in thread_counts {
        let context = format!("refine threads=1 vs threads={threads}");
        let (model, report) = train(full, training, threads).map_err(root_err)?;
        if let Some(d) = diff_json(&context, &base_model, &model) {
            return Err(d);
        }
        if let Some(d) = diff_json(&format!("{context} (report)"), &base_report, &report) {
            return Err(d);
        }
    }
    Ok(())
}

fn root_err(msg: String) -> Divergence {
    Divergence {
        context: "execution failed before comparison".to_string(),
        path: "$".to_string(),
        left: msg,
        right: String::new(),
    }
}

/// Sends each request line through both handlers' dispatch path and
/// demands byte-identical reply lines. Stops at the first divergence.
/// The two sides may be different handler types — comparing a plain
/// [`ServerState`] against a [`ShardedState`] is the sharding
/// differential suite's whole job.
pub fn states_differential<L: ServeHandler, R: ServeHandler>(
    context: &str,
    left: &L,
    right: &R,
    requests: &[String],
) -> Result<(), Divergence> {
    for req in requests {
        let l = reply_line(left, req);
        let r = reply_line(right, req);
        if let Some(d) = diff_json(&format!("{context} — request {req}"), &l, &r) {
            return Err(d);
        }
    }
    Ok(())
}

/// The exact reply line a server would write for `req` (without the
/// trailing newline).
pub fn reply_line<H: ServeHandler>(state: &H, req: &str) -> String {
    serde_json::to_string(&state.handle_line(req))
        .unwrap_or_else(|_| r#"{"type":"error","message":"serialization failed"}"#.to_string())
}

/// Serializes the model to JSON, loads it back, and demands that (a) the
/// round-tripped JSON is byte-identical and (b) the reloaded model
/// answers every request exactly like the original.
pub fn roundtrip_differential(
    model: &AsRoutingModel,
    requests: &[String],
) -> Result<(), Divergence> {
    let json1 = model.to_json().map_err(|e| root_err(e.to_string()))?;
    let reloaded = AsRoutingModel::from_json(&json1).map_err(|e| root_err(e.to_string()))?;
    let json2 = reloaded.to_json().map_err(|e| root_err(e.to_string()))?;
    if let Some(d) = diff_json("model JSON round-trip", &json1, &json2) {
        return Err(d);
    }
    let left = ServerState::new(model.clone(), ServeConfig::default());
    let right = ServerState::new(reloaded, ServeConfig::default());
    states_differential("round-tripped model vs in-memory", &left, &right, requests)
}

/// Runs a real `serve()` instance for `model`, sends every request over
/// TCP (one connection each), and demands that each reply is
/// byte-identical to a fresh one-shot dispatch of the same request —
/// i.e. the server's pooling, caching and sessions never change an
/// answer.
pub fn served_vs_oneshot(model: &AsRoutingModel, requests: &[String]) -> Result<(), Divergence> {
    let state = Arc::new(ServerState::new(
        model.clone(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    ));
    serve_vs_oneshot("served vs one-shot", state, model, requests)
}

/// [`served_vs_oneshot`] for a prefix-sharded server: runs a real
/// `serve()` over a [`ShardedState`] with `shards` shards and demands
/// every TCP reply is byte-identical to a fresh single-epoch one-shot
/// dispatch — sharding must never change an answer, only who computes
/// it.
pub fn sharded_vs_oneshot(
    model: &AsRoutingModel,
    shards: usize,
    requests: &[String],
) -> Result<(), Divergence> {
    let state = Arc::new(ShardedState::new(
        model.clone(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        shards,
    ));
    let context = format!("sharded({shards}) vs one-shot");
    serve_vs_oneshot(&context, state, model, requests)
}

/// Shared body: serve `state` on a real socket, send every request over
/// TCP, compare each reply byte-for-byte with a fresh one-shot
/// single-epoch dispatch.
fn serve_vs_oneshot<H: ServeHandler + 'static>(
    context: &str,
    state: Arc<H>,
    model: &AsRoutingModel,
    requests: &[String],
) -> Result<(), Divergence> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| root_err(e.to_string()))?;
    let addr = listener.local_addr().map_err(|e| root_err(e.to_string()))?;
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve(state, listener))
    };

    let oneshot = ServerState::new(model.clone(), ServeConfig::default());
    let mut result = Ok(());
    for req in requests {
        let served = match ask(addr, req) {
            Ok(line) => line,
            Err(e) => {
                result = Err(root_err(format!("request over TCP failed: {e}")));
                break;
            }
        };
        let direct = reply_line(&oneshot, req);
        if let Some(d) = diff_json(&format!("{context} — request {req}"), &served, &direct) {
            result = Err(d);
            break;
        }
    }

    state.request_shutdown();
    let _ = server.join();
    result
}

/// One request/one reply over a fresh TCP connection.
pub fn ask(addr: SocketAddr, request: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line.trim_end_matches('\n').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_no_divergence() {
        let doc = r#"{"a":[1,2,{"b":"x"}],"c":null}"#;
        assert_eq!(diff_json("t", doc, doc), None);
    }

    #[test]
    fn scalar_divergence_reports_the_path() {
        let l = r#"{"routes":[{"as_path":[1,2,3]},{"as_path":[1,4,3]}]}"#;
        let r = r#"{"routes":[{"as_path":[1,2,3]},{"as_path":[1,9,3]}]}"#;
        let d = diff_json("t", l, r).expect("must diverge");
        assert_eq!(d.path, "$.routes[1].as_path[1]");
        assert_eq!(d.left, "4");
        assert_eq!(d.right, "9");
    }

    #[test]
    fn length_mismatch_points_at_the_shorter_prefix_end() {
        let d = diff_json("t", r#"{"xs":[1,2]}"#, r#"{"xs":[1,2,3]}"#).expect("must diverge");
        assert_eq!(d.path, "$.xs.length");
        assert_eq!((d.left.as_str(), d.right.as_str()), ("2", "3"));
    }

    #[test]
    fn key_mismatch_is_reported_before_values() {
        let d = diff_json("t", r#"{"a":1,"b":2}"#, r#"{"a":1,"c":2}"#).expect("must diverge");
        assert_eq!(d.path, "$.<key #1>");
        assert_eq!((d.left.as_str(), d.right.as_str()), ("b", "c"));
    }

    #[test]
    fn unparseable_input_is_a_divergence_not_a_panic() {
        let d = diff_json("t", "{", r#"{"a":1}"#).expect("must diverge");
        assert_eq!(d.path, "$.<parse>");
        assert_eq!(d.right, "ok");
    }

    #[test]
    fn nested_divergence_inside_earlier_elements_wins() {
        // Element 0 diverges AND the lengths differ: element 0 must win.
        let d = diff_json("t", r#"[{"x":1}]"#, r#"[{"x":2},{"x":3}]"#).expect("must diverge");
        assert_eq!(d.path, "$[0].x");
    }
}
