//! Shared fixtures for the streaming suites: transition archives (a
//! before-RIB plus the update stream that morphs it into a perturbed
//! after-set) and the offline full-retrain baseline every incremental
//! replay must be byte-identical to.

use quasar_core::model::AsRoutingModel;
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_core::persist;
use quasar_core::refine::{refine, RefineConfig};
use quasar_mrt::prelude::*;
use quasar_netgen::prelude::*;
use std::path::{Path, PathBuf};

/// A synthetic before→after transition rendered as an MRT archive.
pub struct StreamScenario {
    /// PEER_INDEX_TABLE + before-RIB + timestamp-ordered updates.
    pub records: Vec<MrtRecord>,
    /// The observation set the archive's RIB dump encodes.
    pub before: Vec<RouteObservation>,
    /// Ground truth: the observation set after every update applies.
    pub after: Vec<RouteObservation>,
    /// Ground truth: exactly the prefixes the updates change.
    pub dirty: Vec<quasar_bgpsim::types::Prefix>,
    /// The stream config the archive was rendered under.
    pub stream_cfg: UpdateStreamConfig,
}

/// Builds a graph-preserving transition scenario: `path_shifts` feeds
/// switch to an alternative path, the AS graph and prefix origins stay
/// fixed — the incremental trainer's fast path. Deterministic in `seed`.
pub fn transition_scenario(seed: u64, path_shifts: usize) -> StreamScenario {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(seed));
    let perturbation = perturb_observations(
        &net.observation_points,
        &net.observations,
        &PerturbationConfig::graph_preserving(path_shifts),
        seed ^ 0xD1CE,
    );
    let stream_cfg = UpdateStreamConfig::default();
    let records = transition_stream(
        &net.observation_points,
        &net.observations,
        &perturbation.after,
        &stream_cfg,
        seed ^ 0x5EED,
    );
    StreamScenario {
        records,
        before: net.observations,
        after: perturbation.after,
        dirty: perturbation.dirty_prefixes,
        stream_cfg,
    }
}

/// Writes records as a raw MRT archive file.
pub fn write_archive(path: &Path, records: &[MrtRecord]) {
    let mut w = MrtWriter::new(Vec::new());
    for r in records {
        w.write_record(r).expect("encode record");
    }
    std::fs::write(path, w.finish().expect("finish archive")).expect("write archive");
}

/// Encodes records to raw archive bytes (for tests that append to a file
/// chunk by chunk).
pub fn archive_bytes(records: &[MrtRecord]) -> Vec<u8> {
    let mut w = MrtWriter::new(Vec::new());
    for r in records {
        w.write_record(r).expect("encode record");
    }
    w.finish().expect("finish archive")
}

/// The offline baseline: a from-scratch retrain of `dataset` persisted
/// with the exact `quasar train` artifact recipe, returned as the
/// artifact's bytes. Every streamed epoch of the same path set must equal
/// this byte for byte.
pub fn full_retrain_artifact(dataset: &Dataset, threads: usize, scratch: &Path) -> Vec<u8> {
    let cfg = RefineConfig {
        threads,
        ..RefineConfig::default()
    };
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, dataset, &cfg).expect("offline retrain");
    model.generalize_med_preferences();
    let json = model.to_json().expect("serialize model");
    persist::save_artifact(scratch, persist::KIND_MODEL, json.as_bytes()).expect("write baseline");
    std::fs::read(scratch).expect("read baseline back")
}

/// A cleaned dataset from raw observations (the same conversion the
/// training CLI applies).
pub fn dataset_of(observations: &[RouteObservation]) -> Dataset {
    Dataset::new(observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }))
}

/// A fresh per-test scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quasar-streamfx-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
