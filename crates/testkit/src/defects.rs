//! Seeded defect injectors for the `quasar-lint` static analyzer.
//!
//! Each [`DefectClass`] surgically breaks a healthy model in a way that
//! exactly one audit rule must catch — the lint test-suite injects each
//! class into a trained model and asserts that the set of *newly* firing
//! rule codes equals `{expected_rule()}`. The injectors go out of their
//! way not to trip neighbouring rules (e.g. the shadowed-filter injector
//! appends its pair of rules, so no pre-existing terminal rule can also
//! shadow them; the orphan-router injector uses a fresh ASN so the new
//! router cannot be mistaken for a prefix origin).
//!
//! All selection among equivalent candidates is driven by `seed` through
//! a splitmix step, so a failing combination is reproducible from its
//! seed alone.

use quasar_bgpsim::network::SessionKind;
use quasar_bgpsim::policy::{Action, PolicyRule, RouteMatch};
use quasar_bgpsim::types::{Asn, Prefix, RouterId};
use quasar_core::model::AsRoutingModel;

/// The defect classes the analyzer must catch, one per rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectClass {
    /// QL0001 — a MED ranking for a prefix the model does not route.
    DanglingPrefixRanking,
    /// QL0002 — an import rule naming an AS with no quasi-router.
    DanglingAsMatcher,
    /// QL0003 — a session-less quasi-router under a fresh ASN.
    OrphanQuasiRouter,
    /// QL0004 — an egress deny that can never match (`path_shorter_than 0`).
    DeadFilter,
    /// QL0005 — a deny appended twice; the second is fully shadowed.
    ShadowedFilter,
    /// QL0006 — a second `SetMed` for an already-ranked (session, prefix).
    DuplicateMedRanking,
    /// QL0007 — mutual local-pref preference across one session (2-cycle).
    LocalPrefDisputeCycle,
    /// QL0008 — an iBGP reflector ring `r0 -> r1 -> r2 -> r0`.
    ReflectorCycle,
    /// QL0009 — every egress of one prefix denied at its origin.
    BlackholedPrefix,
}

impl DefectClass {
    /// Every class, in rule-code order.
    pub const ALL: [DefectClass; 9] = [
        DefectClass::DanglingPrefixRanking,
        DefectClass::DanglingAsMatcher,
        DefectClass::OrphanQuasiRouter,
        DefectClass::DeadFilter,
        DefectClass::ShadowedFilter,
        DefectClass::DuplicateMedRanking,
        DefectClass::LocalPrefDisputeCycle,
        DefectClass::ReflectorCycle,
        DefectClass::BlackholedPrefix,
    ];

    /// The stable code of the lint rule that must (and alone must) fire.
    pub fn expected_rule(self) -> &'static str {
        match self {
            DefectClass::DanglingPrefixRanking => "QL0001",
            DefectClass::DanglingAsMatcher => "QL0002",
            DefectClass::OrphanQuasiRouter => "QL0003",
            DefectClass::DeadFilter => "QL0004",
            DefectClass::ShadowedFilter => "QL0005",
            DefectClass::DuplicateMedRanking => "QL0006",
            DefectClass::LocalPrefDisputeCycle => "QL0007",
            DefectClass::ReflectorCycle => "QL0008",
            DefectClass::BlackholedPrefix => "QL0009",
        }
    }

    /// Injects this defect into `model`. Returns a short description of
    /// what was broken (for assertion messages), or an error when the
    /// model offers no viable injection site (e.g. no eBGP session).
    pub fn inject(self, model: &mut AsRoutingModel, seed: u64) -> Result<String, String> {
        let mut rng = Splitmix(seed ^ self.expected_rule().len() as u64);
        match self {
            DefectClass::DanglingPrefixRanking => {
                let (q, peer) = pick_session(model, &mut rng)?;
                let bogus = fresh_prefix(model);
                model.set_med_preference(q, bogus, &[peer]);
                Ok(format!("MED ranking for unrouted prefix {bogus} at {q}"))
            }
            DefectClass::DanglingAsMatcher => {
                let (q, peer) = pick_session(model, &mut rng)?;
                let p = pick_prefix(model, &mut rng)?;
                let ghost = fresh_asn(model);
                let rule = PolicyRule::new(
                    RouteMatch {
                        from_asn: Some(ghost),
                        ..RouteMatch::prefix(p)
                    },
                    Action::Deny,
                );
                model
                    .network_mut()
                    .import_policy_mut(q, peer)
                    .map_err(|e| e.to_string())?
                    .push(rule);
                Ok(format!(
                    "import rule at {q} from {peer} names ghost {ghost}"
                ))
            }
            DefectClass::OrphanQuasiRouter => {
                let ghost = fresh_asn(model);
                let orphan = RouterId::new(ghost, 0);
                model.network_mut().add_router(orphan);
                Ok(format!("orphan quasi-router {orphan} with no sessions"))
            }
            DefectClass::DeadFilter => {
                let (q, peer) = pick_session(model, &mut rng)?;
                let p = pick_prefix(model, &mut rng)?;
                let rule = PolicyRule::new(
                    RouteMatch {
                        path_shorter_than: Some(0),
                        ..RouteMatch::prefix(p)
                    },
                    Action::Deny,
                );
                model
                    .network_mut()
                    .export_policy_mut(q, peer)
                    .map_err(|e| e.to_string())?
                    .push(rule);
                Ok(format!("dead deny (path_shorter_than 0) at {q} -> {peer}"))
            }
            DefectClass::ShadowedFilter => {
                let (q, peer) = pick_session(model, &mut rng)?;
                let p = pick_prefix(model, &mut rng)?;
                // Appended as the last two rules: the first shadows the
                // second, and nothing earlier can subsume the first
                // without having already terminated the same routes.
                let rule = PolicyRule::new(
                    RouteMatch {
                        path_shorter_than: Some(1),
                        ..RouteMatch::prefix(p)
                    },
                    Action::Deny,
                );
                let chain = model
                    .network_mut()
                    .export_policy_mut(q, peer)
                    .map_err(|e| e.to_string())?;
                chain.push(rule.clone());
                chain.push(rule);
                Ok(format!("identical deny pair for {p} at {q} -> {peer}"))
            }
            DefectClass::DuplicateMedRanking => {
                // Rank a prefix at a router first (through the model API,
                // as refinement would), then push a stale second SetMed
                // for one of the now-ranked sessions.
                let (q, peer) = pick_session(model, &mut rng)?;
                let p = pick_prefix(model, &mut rng)?;
                model.set_med_preference(q, p, &[peer]);
                let rule = PolicyRule::new(RouteMatch::prefix(p), Action::SetMed(7));
                model
                    .network_mut()
                    .import_policy_mut(q, peer)
                    .map_err(|e| e.to_string())?
                    .push(rule);
                Ok(format!("duplicate SetMed for {p} at {q} from {peer}"))
            }
            DefectClass::LocalPrefDisputeCycle => {
                let (q, peer) = pick_contested_session(model, &mut rng)?;
                let p = pick_prefix(model, &mut rng)?;
                for (at, from) in [(q, peer), (peer, q)] {
                    let rule = PolicyRule::new(RouteMatch::prefix(p), Action::SetLocalPref(200));
                    model
                        .network_mut()
                        .import_policy_mut(at, from)
                        .map_err(|e| e.to_string())?
                        .push(rule);
                }
                Ok(format!(
                    "mutual local-pref 200 for {p} across {q} -- {peer}"
                ))
            }
            DefectClass::ReflectorCycle => {
                // Ensure one AS has three quasi-routers, then wire an
                // iBGP ring with a circular client chain.
                let asn = model
                    .prefixes()
                    .values()
                    .copied()
                    .next()
                    .ok_or("model routes no prefix")?;
                while model.quasi_routers_of(asn).len() < 3 {
                    let src = *model
                        .quasi_routers_of(asn)
                        .first()
                        .ok_or("origin AS has no quasi-router")?;
                    model.duplicate_quasi_router(src);
                }
                let routers = model.quasi_routers_of(asn);
                let ring = [routers[0], routers[1], routers[2]];
                let net = model.network_mut();
                for i in 0..3 {
                    let (a, b) = (ring[i], ring[(i + 1) % 3]);
                    if !net.has_session(a, b) {
                        net.add_session(a, b, SessionKind::Ibgp)
                            .map_err(|e| e.to_string())?;
                    }
                    net.set_rr_client(a, b).map_err(|e| e.to_string())?;
                }
                Ok(format!(
                    "reflector ring {} -> {} -> {} -> {}",
                    ring[0], ring[1], ring[2], ring[0]
                ))
            }
            DefectClass::BlackholedPrefix => {
                let p = pick_prefix(model, &mut rng)?;
                let origin = *model.prefixes().get(&p).ok_or("prefix has no origin")?;
                let routers = model.quasi_routers_of(origin);
                let mut denied = 0;
                for q in routers {
                    for peer in model.network().peers_of(q) {
                        if peer.asn() == origin {
                            continue;
                        }
                        model
                            .network_mut()
                            .export_policy_mut(q, peer)
                            .map_err(|e| e.to_string())?
                            .push(PolicyRule::new(RouteMatch::prefix(p), Action::Deny));
                        denied += 1;
                    }
                }
                if denied == 0 {
                    return Err(format!("origin {origin} has no eBGP egress to deny"));
                }
                Ok(format!(
                    "denied {p} on all {denied} egress directions of {origin}"
                ))
            }
        }
    }
}

/// Deterministic selection stream (splitmix64).
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, items: &[T]) -> Option<T> {
        if items.is_empty() {
            None
        } else {
            Some(items[(self.next() % items.len() as u64) as usize])
        }
    }
}

/// A seeded eBGP session as a (router, peer) pair.
fn pick_session(
    model: &AsRoutingModel,
    rng: &mut Splitmix,
) -> Result<(RouterId, RouterId), String> {
    let mut pairs: Vec<(RouterId, RouterId)> = Vec::new();
    for &q in model.network().routers() {
        for peer in model.network().peers_of(q) {
            if peer.asn() != q.asn() {
                pairs.push((q, peer));
            }
        }
    }
    rng.pick(&pairs)
        .ok_or_else(|| "model has no eBGP session".into())
}

/// A seeded eBGP session whose *both* endpoints have at least two eBGP
/// peers — required for a dispute edge (a single-peer router has no
/// alternative to prefer against).
fn pick_contested_session(
    model: &AsRoutingModel,
    rng: &mut Splitmix,
) -> Result<(RouterId, RouterId), String> {
    let degree = |r: RouterId| {
        model
            .network()
            .peers_of(r)
            .iter()
            .filter(|p| p.asn() != r.asn())
            .count()
    };
    let mut pairs: Vec<(RouterId, RouterId)> = Vec::new();
    for &q in model.network().routers() {
        if degree(q) < 2 {
            continue;
        }
        for peer in model.network().peers_of(q) {
            if peer.asn() != q.asn() && degree(peer) >= 2 {
                pairs.push((q, peer));
            }
        }
    }
    rng.pick(&pairs)
        .ok_or_else(|| "no session with two multi-homed endpoints".into())
}

fn pick_prefix(model: &AsRoutingModel, rng: &mut Splitmix) -> Result<Prefix, String> {
    let prefixes: Vec<Prefix> = model.prefixes().keys().copied().collect();
    rng.pick(&prefixes)
        .ok_or_else(|| "model routes no prefix".into())
}

/// A prefix the model does not route.
fn fresh_prefix(model: &AsRoutingModel) -> Prefix {
    let mut n = 0xFFFF;
    loop {
        let p = Prefix::for_origin(Asn(n));
        if !model.prefixes().contains_key(&p) {
            return p;
        }
        n -= 1;
    }
}

/// A 16-bit-safe ASN with no quasi-router and no originated prefix.
fn fresh_asn(model: &AsRoutingModel) -> Asn {
    let mut n = 0xFFFE;
    loop {
        let a = Asn(n);
        if model.quasi_routers_of(a).is_empty() && !model.prefixes().values().any(|&o| o == a) {
            return a;
        }
        n -= 1;
    }
}

/// Flips one payload byte of an artifact file in place (for
/// corrupted-model tests). The offset lands past the frame header so the
/// checksum — not the header parser — must catch it.
pub fn flip_byte(path: &std::path::Path, seed: u64) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "cannot corrupt an empty file",
        ));
    }
    let header = bytes.iter().position(|&b| b == b'\n').map_or(0, |i| i + 1);
    let span = bytes.len().saturating_sub(header).max(1);
    let mut rng = Splitmix(seed);
    let at = header + (rng.next() % span as u64) as usize;
    let at = at.min(bytes.len() - 1);
    bytes[at] ^= 0x20; // flips case in JSON text; never produces the same byte
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::toy_model;

    #[test]
    fn every_class_injects_into_the_toy_model() {
        for class in DefectClass::ALL {
            let mut model = toy_model();
            let what = class
                .inject(&mut model, 42)
                .unwrap_or_else(|e| panic!("{class:?} failed to inject: {e}"));
            assert!(!what.is_empty());
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        for class in DefectClass::ALL {
            let mut a = toy_model();
            let mut b = toy_model();
            let da = class.inject(&mut a, 7).expect("inject a");
            let db = class.inject(&mut b, 7).expect("inject b");
            assert_eq!(da, db, "{class:?} diverged across identical seeds");
            assert_eq!(
                a.to_json().expect("a serializes"),
                b.to_json().expect("b serializes"),
            );
        }
    }

    #[test]
    fn fresh_identifiers_are_actually_fresh() {
        let model = toy_model();
        let p = fresh_prefix(&model);
        assert!(!model.prefixes().contains_key(&p));
        let a = fresh_asn(&model);
        assert!(model.quasi_routers_of(a).is_empty());
    }
}
