//! Seeded chaos TCP proxy.
//!
//! [`Proxy`] listens on an ephemeral port and forwards every accepted
//! connection to a fixed upstream address, mangling *delivery* on the
//! client→server direction according to a [`ChaosConfig`] and a `u64`
//! seed:
//!
//! - writes are re-chunked at arbitrary byte boundaries (a 60-byte
//!   request may arrive as 17 separate TCP writes),
//! - individual chunks are delayed,
//! - a connection's client→server stream may be truncated mid-request
//!   (write side shut down, replies still relayed),
//! - a connection may be dropped outright (both sockets closed).
//!
//! Payload bytes are never altered, reordered, or duplicated, so every
//! request that arrives complete is exactly what the client sent, and
//! every complete reply the client reads is exactly what the server
//! wrote. That is what makes "byte-identical to the fault-free run" a
//! sound assertion in soak tests.
//!
//! All decisions derive from `seed` and the connection index via
//! SplitMix64 — two runs with the same seed and the same connection
//! order inject the same faults at the same byte offsets.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long the acceptor sleeps between non-blocking accept attempts.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Read timeout on the client socket so relay threads notice shutdown.
const RELAY_POLL: Duration = Duration::from_millis(50);

/// Tunables for one proxy instance. All `*_1in` knobs are "one in N"
/// probabilities; `0` disables that fault entirely.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; every fault decision derives from it.
    pub seed: u64,
    /// Forwarded chunks are `1..=max_chunk` bytes (minimum 1).
    pub max_chunk: usize,
    /// Chance per forwarded chunk of sleeping before the write.
    pub delay_1in: u64,
    /// Injected delays are `1..=max_delay_ms` milliseconds.
    pub max_delay_ms: u64,
    /// Chance per connection of truncating the client→server stream:
    /// after a seed-chosen byte offset the write side is shut down, but
    /// replies already earned keep flowing back.
    pub truncate_1in: u64,
    /// Chance per connection of dropping it outright (both sockets
    /// closed mid-flight) after a seed-chosen byte offset.
    pub drop_1in: u64,
    /// Upper bound (exclusive) on the byte offset at which a truncate
    /// or drop strikes.
    pub cut_within: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            max_chunk: 7,
            delay_1in: 4,
            max_delay_ms: 2,
            truncate_1in: 8,
            drop_1in: 11,
            cut_within: 48,
        }
    }
}

/// What one connection is fated to suffer, decided up front from the
/// seed so tests can predict (and count) the faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Shut down the client→server direction after this many forwarded
    /// bytes.
    pub truncate_after: Option<usize>,
    /// Close both sockets after this many forwarded bytes. Takes
    /// precedence over `truncate_after`.
    pub drop_after: Option<usize>,
}

impl FaultPlan {
    /// The deterministic plan for connection number `conn_index` (0-based
    /// accept order) under `cfg`.
    pub fn for_connection(cfg: &ChaosConfig, conn_index: u64) -> FaultPlan {
        // Distinct stream from the chunking RNG (salt 0xFA); the plan
        // must not shift when `max_chunk` changes.
        let mut rng = SplitMix64::new(cfg.seed ^ mix(conn_index ^ 0xFA));
        let cut = |rng: &mut SplitMix64, one_in: u64, within: usize| {
            if one_in > 0 && rng.one_in(one_in) {
                Some(rng.below(within.max(1) as u64) as usize)
            } else {
                // Burn the offset draw anyway so later decisions don't
                // depend on whether this fault was enabled.
                let _ = rng.next();
                None
            }
        };
        let drop_after = cut(&mut rng, cfg.drop_1in, cfg.cut_within);
        let truncate_after = cut(&mut rng, cfg.truncate_1in, cfg.cut_within);
        FaultPlan {
            truncate_after,
            drop_after,
        }
    }
}

/// Fault counters, filled in as connections are handled.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    chunks: AtomicU64,
    bytes_forward: AtomicU64,
    bytes_back: AtomicU64,
    delays: AtomicU64,
    truncated: AtomicU64,
    dropped: AtomicU64,
}

/// Snapshot of a proxy's fault counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Client→server chunks forwarded (splitting inflates this well past
    /// the number of client writes).
    pub chunks: u64,
    /// Client→server payload bytes forwarded.
    pub bytes_forward: u64,
    /// Server→client payload bytes relayed.
    pub bytes_back: u64,
    /// Injected per-chunk delays.
    pub delays: u64,
    /// Connections whose request stream was truncated.
    pub truncated: u64,
    /// Connections dropped outright.
    pub dropped: u64,
}

/// A running chaos proxy. Dropping it (or calling [`Proxy::stop`]) shuts
/// the listener down and joins every relay thread.
pub struct Proxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    acceptor: Option<JoinHandle<()>>,
}

impl Proxy {
    /// Starts a proxy on an ephemeral localhost port forwarding to
    /// `upstream`.
    pub fn start(upstream: SocketAddr, cfg: ChaosConfig) -> io::Result<Proxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            thread::spawn(move || accept_loop(listener, upstream, cfg, shutdown, counters))
        };
        Ok(Proxy {
            addr,
            shutdown,
            counters,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current fault counters.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.counters;
        ChaosStats {
            connections: c.connections.load(Ordering::Relaxed),
            chunks: c.chunks.load(Ordering::Relaxed),
            bytes_forward: c.bytes_forward.load(Ordering::Relaxed),
            bytes_back: c.bytes_back.load(Ordering::Relaxed),
            delays: c.delays.load(Ordering::Relaxed),
            truncated: c.truncated.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, joins all relay threads, and returns the final
    /// counters.
    pub fn stop(mut self) -> ChaosStats {
        self.shut_down();
        self.stats()
    }

    fn shut_down(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.shut_down();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    cfg: ChaosConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut relays: Vec<JoinHandle<()>> = Vec::new();
    let mut index = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn_index = index;
                index += 1;
                let counters = Arc::clone(&counters);
                let shutdown = Arc::clone(&shutdown);
                relays.push(thread::spawn(move || {
                    relay_connection(client, upstream, cfg, conn_index, counters, shutdown);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
        // Reap finished relays so a long soak doesn't hoard thousands of
        // exited-but-unjoined threads.
        relays.retain(|h| !h.is_finished());
    }
    for h in relays {
        let _ = h.join();
    }
}

/// Forwards one connection until EOF, fault, or proxy shutdown.
fn relay_connection(
    client: TcpStream,
    upstream: SocketAddr,
    cfg: ChaosConfig,
    conn_index: u64,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let _ = client.set_read_timeout(Some(RELAY_POLL));

    // Server→client direction: a plain unmangled copy in its own thread.
    let back = {
        let (Ok(mut from), Ok(mut to)) = (server.try_clone(), client.try_clone()) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let counters = Arc::clone(&counters);
        thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        counters.bytes_back.fetch_add(n as u64, Ordering::Relaxed);
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            // Server closed (or errored): pass the EOF on to the client.
            let _ = to.shutdown(Shutdown::Write);
        })
    };

    let plan = FaultPlan::for_connection(&cfg, conn_index);
    let mut rng = SplitMix64::new(cfg.seed ^ mix(conn_index));
    let outcome = forward_mangled(&client, &server, &cfg, plan, &mut rng, &counters, &shutdown);

    match outcome {
        Outcome::Dropped => {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
        }
        Outcome::Truncated => {
            counters.truncated.fetch_add(1, Ordering::Relaxed);
            // Write side already shut; the back-relay keeps draining any
            // replies the server still owes for complete earlier lines.
        }
        Outcome::Eof => {}
    }
    let _ = back.join();
    let _ = client.shutdown(Shutdown::Both);
    let _ = server.shutdown(Shutdown::Both);
}

enum Outcome {
    /// Client finished cleanly (EOF, or write error after server closed).
    Eof,
    /// The plan cut the request stream; replies may still flow.
    Truncated,
    /// The plan killed the whole connection.
    Dropped,
}

/// Client→server pump applying the fault plan and chunk mangling.
fn forward_mangled(
    client: &TcpStream,
    server: &TcpStream,
    cfg: &ChaosConfig,
    plan: FaultPlan,
    rng: &mut SplitMix64,
    counters: &Counters,
    shutdown: &AtomicBool,
) -> Outcome {
    let mut client = client;
    let mut server = server;
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        let n = match client.read(&mut buf) {
            Ok(0) => {
                let _ = server.shutdown(Shutdown::Write);
                return Outcome::Eof;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Outcome::Dropped;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = server.shutdown(Shutdown::Write);
                return Outcome::Eof;
            }
        };
        let mut data = &buf[..n];
        while !data.is_empty() {
            if let Some(at) = plan.drop_after {
                if forwarded >= at {
                    return Outcome::Dropped;
                }
            }
            if let Some(at) = plan.truncate_after {
                if forwarded >= at && plan.drop_after.is_none() {
                    let _ = server.shutdown(Shutdown::Write);
                    return Outcome::Truncated;
                }
            }
            let take = data
                .len()
                .min(1 + rng.below(cfg.max_chunk.max(1) as u64) as usize);
            if cfg.delay_1in > 0 && rng.one_in(cfg.delay_1in) {
                counters.delays.fetch_add(1, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(
                    1 + rng.below(cfg.max_delay_ms.max(1)),
                ));
            }
            if server.write_all(&data[..take]).is_err() {
                // Upstream went away (e.g. server-side shutdown): treat
                // like EOF, the back-relay will surface whatever the
                // server managed to say.
                return Outcome::Eof;
            }
            counters.chunks.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_forward
                .fetch_add(take as u64, Ordering::Relaxed);
            forwarded += take;
            data = &data[take..];
        }
    }
}

/// SplitMix64: tiny, seedable, and plenty for fault scheduling.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.0)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True once in `n` draws on average (`n > 0`).
    fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial upstream echo-line server for proxy unit tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = thread::spawn(move || {
            // Serve a bounded number of connections, then quit; unit
            // tests never need more.
            for stream in listener.incoming().take(8).flatten() {
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    let mut stream = stream;
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if stream.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, h)
    }

    #[test]
    fn plans_are_deterministic_and_vary_by_connection() {
        let cfg = ChaosConfig {
            seed: 42,
            ..ChaosConfig::default()
        };
        let plans: Vec<FaultPlan> = (0..64)
            .map(|i| FaultPlan::for_connection(&cfg, i))
            .collect();
        let again: Vec<FaultPlan> = (0..64)
            .map(|i| FaultPlan::for_connection(&cfg, i))
            .collect();
        assert_eq!(plans, again, "same seed must give the same plans");
        assert!(
            plans.iter().any(|p| p.truncate_after.is_some()),
            "64 connections at 1-in-8 should see at least one truncation"
        );
        assert!(
            plans.iter().any(|p| p.drop_after.is_some()),
            "64 connections at 1-in-11 should see at least one drop"
        );
        assert!(
            plans
                .iter()
                .any(|p| p.truncate_after.is_none() && p.drop_after.is_none()),
            "most connections should pass unharmed"
        );
        let other = ChaosConfig {
            seed: 43,
            ..ChaosConfig::default()
        };
        let shifted: Vec<FaultPlan> = (0..64)
            .map(|i| FaultPlan::for_connection(&other, i))
            .collect();
        assert_ne!(plans, shifted, "a different seed must reshuffle the fate");
    }

    #[test]
    fn clean_connections_pass_payload_unmodified() {
        let (upstream, _h) = echo_server();
        // No cuts, aggressive splitting: payload must still arrive intact.
        let cfg = ChaosConfig {
            seed: 7,
            max_chunk: 3,
            delay_1in: 5,
            max_delay_ms: 1,
            truncate_1in: 0,
            drop_1in: 0,
            ..ChaosConfig::default()
        };
        let proxy = Proxy::start(upstream, cfg).unwrap();
        let msg = "the quick brown fox jumps over the lazy dog 0123456789\n";
        for _ in 0..4 {
            let mut conn = TcpStream::connect(proxy.addr()).unwrap();
            conn.write_all(msg.as_bytes()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert_eq!(reply, msg, "proxy corrupted an echo round-trip");
        }
        let stats = proxy.stop();
        assert_eq!(stats.connections, 4);
        assert!(
            stats.chunks > stats.connections,
            "max_chunk=3 must split each request into many writes"
        );
        assert_eq!(stats.truncated + stats.dropped, 0);
    }

    #[test]
    fn drop_plan_kills_the_connection() {
        let (upstream, _h) = echo_server();
        let cfg = ChaosConfig {
            seed: 1,
            truncate_1in: 0,
            drop_1in: 1, // every connection is doomed
            cut_within: 4,
            delay_1in: 0,
            ..ChaosConfig::default()
        };
        let proxy = Proxy::start(upstream, cfg).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        // Large enough to sail past the cut offset.
        let _ = conn.write_all(&[b'x'; 256]);
        let _ = conn.write_all(b"\n");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        let n = conn.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "a dropped connection must yield EOF, not data");
        let stats = proxy.stop();
        assert_eq!(stats.dropped, 1);
    }
}
