//! Shared fixtures for the testkit's own layers and for downstream test
//! files: a hand-built five-AS model whose answers are easy to reason
//! about, a canonical request mix covering every request type, and a
//! synthetic trained model for refinement-level differentials.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::model::AsRoutingModel;
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_core::refine::{refine, RefineConfig, RefineReport};
use quasar_netgen::prelude::*;
use quasar_topology::graph::AsGraph;
use std::collections::BTreeMap;

/// The five-AS diamond used across the workspace's server tests:
///
/// ```text
///   1 — 2 — 3        prefixes: for_origin(3), for_origin(2)
///   |       |
///   5 — 4 ——+
/// ```
///
/// built from three observed paths, so AS1 sees two disjoint routes to
/// AS3 and AS5 sees one.
pub fn toy_model() -> AsRoutingModel {
    let paths = vec![
        AsPath::from_u32s(&[1, 2, 3]),
        AsPath::from_u32s(&[1, 4, 3]),
        AsPath::from_u32s(&[5, 4, 3]),
    ];
    let graph = AsGraph::from_paths(&paths);
    let mut origins = BTreeMap::new();
    origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
    origins.insert(Prefix::for_origin(Asn(2)), Asn(2));
    AsRoutingModel::initial(&graph, &origins)
}

/// Observer ASes worth querying against [`toy_model`].
pub fn toy_observers() -> Vec<u32> {
    vec![1, 2, 4, 5]
}

/// A deterministic request mix over [`toy_model`] covering predict (with
/// and without an observed path), explain, stats, and a what-if diff —
/// every reply is a pure function of the model, so two servers given the
/// same mix must answer byte-identically.
pub fn toy_requests() -> Vec<String> {
    let p3 = Prefix::for_origin(Asn(3)).to_string();
    let p2 = Prefix::for_origin(Asn(2)).to_string();
    let mut reqs = Vec::new();
    for observer in toy_observers() {
        for prefix in [&p3, &p2] {
            reqs.push(format!(
                r#"{{"type":"predict","prefix":"{prefix}","observer":{observer}}}"#
            ));
        }
    }
    reqs.push(format!(
        r#"{{"type":"predict","prefix":"{p3}","observer":1,"observed_path":[1,2,3]}}"#
    ));
    reqs.push(format!(
        r#"{{"type":"explain","prefix":"{p3}","observer":1}}"#
    ));
    reqs.push(format!(
        r#"{{"type":"explain","prefix":"{p3}","observer":5}}"#
    ));
    reqs.push(r#"{"type":"stats"}"#.to_string());
    reqs.push(format!(
        r#"{{"type":"diff","changes":[{{"action":"depeer","a":1,"b":2}}],"prefixes":["{p3}"]}}"#
    ));
    reqs
}

/// A deterministic request mix exercising every protocol verb against an
/// arbitrary trained model — the sharding differential suite's workload.
///
/// Covers one predict per (prefix, cycled observer), explains over the
/// first few prefixes, `stats`, a whole-model diff (no `prefixes` field,
/// so the server resolves every prefix and a sharded server must fan the
/// work out and merge), restricted diffs whose explicit prefix lists are
/// deliberately *unsorted and duplicated* (the reply must still come
/// back in ascending deduplicated prefix order), an explicit empty
/// prefix list, and the canonical error cases: unknown prefix, unknown
/// observer, empty change list, bad prefix syntax, and a non-JSON line.
/// Every reply — including the errors — is a pure function of the
/// model, so two servers given this mix must answer byte-identically.
pub fn model_requests(model: &AsRoutingModel, observers: &[u32]) -> Vec<String> {
    let prefixes: Vec<String> = model.prefixes().keys().map(|p| p.to_string()).collect();
    let origins: Vec<u32> = model.prefixes().values().map(|a| a.0).collect();
    let mut reqs = Vec::new();
    if prefixes.is_empty() || observers.is_empty() {
        return reqs;
    }

    for (i, prefix) in prefixes.iter().enumerate() {
        let observer = observers[i % observers.len()];
        reqs.push(format!(
            r#"{{"type":"predict","prefix":"{prefix}","observer":{observer}}}"#
        ));
    }
    for prefix in prefixes.iter().take(3) {
        let observer = observers[observers.len() - 1];
        reqs.push(format!(
            r#"{{"type":"explain","prefix":"{prefix}","observer":{observer}}}"#
        ));
    }
    reqs.push(r#"{"type":"stats"}"#.to_string());

    // What-if diffs between ASes guaranteed to exist (prefix origins).
    let a = origins[0];
    let b = origins[origins.len() - 1];
    let depeer = format!(r#"{{"action":"depeer","a":{a},"b":{b}}}"#);
    // Whole-model: the server resolves every prefix itself.
    reqs.push(format!(r#"{{"type":"diff","changes":[{depeer}]}}"#));
    // Restricted, with the prefix list reversed AND the (sorted-order)
    // first prefix repeated at the end: the reply must nevertheless be
    // in ascending deduplicated prefix order.
    let mut unsorted: Vec<String> = prefixes.iter().rev().cloned().collect();
    unsorted.push(prefixes[0].clone());
    let list = unsorted
        .iter()
        .map(|p| format!("\"{p}\""))
        .collect::<Vec<_>>()
        .join(",");
    reqs.push(format!(
        r#"{{"type":"diff","changes":[{depeer}],"prefixes":[{list}]}}"#
    ));
    reqs.push(format!(
        r#"{{"type":"diff","changes":[{{"action":"add_peering","a":{a},"b":{b}}}],"prefixes":["{}"]}}"#,
        prefixes[0]
    ));
    // Explicit empty prefix list: legal, diffs nothing, still opens a
    // session.
    reqs.push(format!(
        r#"{{"type":"diff","changes":[{depeer}],"prefixes":[]}}"#
    ));

    // Error cases — replies must be byte-identical too.
    reqs.push(r#"{"type":"predict","prefix":"198.51.100.0/24","observer":1}"#.to_string());
    reqs.push(format!(
        r#"{{"type":"predict","prefix":"{}","observer":4000000000}}"#,
        prefixes[0]
    ));
    reqs.push(r#"{"type":"diff","changes":[]}"#.to_string());
    reqs.push(format!(
        r#"{{"type":"diff","changes":[{depeer}],"prefixes":["not-a-prefix"]}}"#
    ));
    reqs.push("this is not json".to_string());
    reqs
}

/// A synthetic internet refined into a model, plus the datasets that
/// produced it — the fixture for refinement-level differential tests.
pub struct TrainedFixture {
    /// The refined model.
    pub model: AsRoutingModel,
    /// Every observation (training + holdout).
    pub full: Dataset,
    /// The training half.
    pub training: Dataset,
    /// The refinement report.
    pub report: RefineReport,
}

/// Generates a tiny synthetic internet from `seed`, splits it, and
/// refines a model on the training half (single-threaded, so the result
/// is the canonical baseline for thread-count differentials).
pub fn tiny_trained(seed: u64) -> TrainedFixture {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(seed));
    let full = Dataset::new(net.observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }));
    let (training, _) = full.split_by_point(0.5, 7);
    let cfg = RefineConfig {
        threads: 1,
        ..RefineConfig::default()
    };
    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    let report = refine(&mut model, &training, &cfg).expect("tiny fixture refines");
    TrainedFixture {
        model,
        full,
        training,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_requests_are_valid_and_deterministic() {
        let model = toy_model();
        let state = quasar_serve::server::ServerState::new(
            model,
            quasar_serve::server::ServeConfig::default(),
        );
        for req in toy_requests() {
            let reply = crate::diff::reply_line(&state, &req);
            assert!(
                !reply.contains(r#""type":"error""#),
                "canonical request mix must not error: {req} -> {reply}"
            );
        }
        assert_eq!(toy_requests(), toy_requests());
    }

    #[test]
    fn model_requests_cover_success_and_error_paths() {
        let model = toy_model();
        let reqs = model_requests(&model, &toy_observers());
        assert_eq!(reqs, model_requests(&model, &toy_observers()));
        let state = quasar_serve::server::ServerState::new(
            model,
            quasar_serve::server::ServeConfig::default(),
        );
        let replies: Vec<String> = reqs
            .iter()
            .map(|r| crate::diff::reply_line(&state, r))
            .collect();
        assert!(
            replies.iter().any(|r| !r.contains(r#""type":"error""#)),
            "mix must include successful requests"
        );
        assert!(
            replies.iter().any(|r| r.contains(r#""type":"error""#)),
            "mix must include error-reply requests"
        );
    }

    #[test]
    fn tiny_fixture_converges() {
        let fx = tiny_trained(101);
        assert!(fx.report.converged(), "tiny fixture must converge");
        assert!(!fx.model.prefixes().is_empty());
        assert!(fx.training.len() < fx.full.len());
    }
}
