//! Shared fixtures for the testkit's own layers and for downstream test
//! files: a hand-built five-AS model whose answers are easy to reason
//! about, a canonical request mix covering every request type, and a
//! synthetic trained model for refinement-level differentials.

use quasar_bgpsim::aspath::AsPath;
use quasar_bgpsim::types::{Asn, Prefix};
use quasar_core::model::AsRoutingModel;
use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_core::refine::{refine, RefineConfig, RefineReport};
use quasar_netgen::prelude::*;
use quasar_topology::graph::AsGraph;
use std::collections::BTreeMap;

/// The five-AS diamond used across the workspace's server tests:
///
/// ```text
///   1 — 2 — 3        prefixes: for_origin(3), for_origin(2)
///   |       |
///   5 — 4 ——+
/// ```
///
/// built from three observed paths, so AS1 sees two disjoint routes to
/// AS3 and AS5 sees one.
pub fn toy_model() -> AsRoutingModel {
    let paths = vec![
        AsPath::from_u32s(&[1, 2, 3]),
        AsPath::from_u32s(&[1, 4, 3]),
        AsPath::from_u32s(&[5, 4, 3]),
    ];
    let graph = AsGraph::from_paths(&paths);
    let mut origins = BTreeMap::new();
    origins.insert(Prefix::for_origin(Asn(3)), Asn(3));
    origins.insert(Prefix::for_origin(Asn(2)), Asn(2));
    AsRoutingModel::initial(&graph, &origins)
}

/// Observer ASes worth querying against [`toy_model`].
pub fn toy_observers() -> Vec<u32> {
    vec![1, 2, 4, 5]
}

/// A deterministic request mix over [`toy_model`] covering predict (with
/// and without an observed path), explain, stats, and a what-if diff —
/// every reply is a pure function of the model, so two servers given the
/// same mix must answer byte-identically.
pub fn toy_requests() -> Vec<String> {
    let p3 = Prefix::for_origin(Asn(3)).to_string();
    let p2 = Prefix::for_origin(Asn(2)).to_string();
    let mut reqs = Vec::new();
    for observer in toy_observers() {
        for prefix in [&p3, &p2] {
            reqs.push(format!(
                r#"{{"type":"predict","prefix":"{prefix}","observer":{observer}}}"#
            ));
        }
    }
    reqs.push(format!(
        r#"{{"type":"predict","prefix":"{p3}","observer":1,"observed_path":[1,2,3]}}"#
    ));
    reqs.push(format!(
        r#"{{"type":"explain","prefix":"{p3}","observer":1}}"#
    ));
    reqs.push(format!(
        r#"{{"type":"explain","prefix":"{p3}","observer":5}}"#
    ));
    reqs.push(r#"{"type":"stats"}"#.to_string());
    reqs.push(format!(
        r#"{{"type":"diff","changes":[{{"action":"depeer","a":1,"b":2}}],"prefixes":["{p3}"]}}"#
    ));
    reqs
}

/// A synthetic internet refined into a model, plus the datasets that
/// produced it — the fixture for refinement-level differential tests.
pub struct TrainedFixture {
    /// The refined model.
    pub model: AsRoutingModel,
    /// Every observation (training + holdout).
    pub full: Dataset,
    /// The training half.
    pub training: Dataset,
    /// The refinement report.
    pub report: RefineReport,
}

/// Generates a tiny synthetic internet from `seed`, splits it, and
/// refines a model on the training half (single-threaded, so the result
/// is the canonical baseline for thread-count differentials).
pub fn tiny_trained(seed: u64) -> TrainedFixture {
    let net = SyntheticInternet::generate(NetGenConfig::tiny(seed));
    let full = Dataset::new(net.observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }));
    let (training, _) = full.split_by_point(0.5, 7);
    let cfg = RefineConfig {
        threads: 1,
        ..RefineConfig::default()
    };
    let mut model = AsRoutingModel::initial(&full.as_graph(), &full.prefixes());
    let report = refine(&mut model, &training, &cfg).expect("tiny fixture refines");
    TrainedFixture {
        model,
        full,
        training,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_requests_are_valid_and_deterministic() {
        let model = toy_model();
        let state = quasar_serve::server::ServerState::new(
            model,
            quasar_serve::server::ServeConfig::default(),
        );
        for req in toy_requests() {
            let reply = crate::diff::reply_line(&state, &req);
            assert!(
                !reply.contains(r#""type":"error""#),
                "canonical request mix must not error: {req} -> {reply}"
            );
        }
        assert_eq!(toy_requests(), toy_requests());
    }

    #[test]
    fn tiny_fixture_converges() {
        let fx = tiny_trained(101);
        assert!(fx.report.converged(), "tiny fixture must converge");
        assert!(!fx.model.prefixes().is_empty());
        assert!(fx.training.len() < fx.full.len());
    }
}
