//! Test infrastructure for the quasar workspace: everything here exists to
//! break the other crates on purpose, deterministically.
//!
//! Three layers, usable independently:
//!
//! 1. **Failpoints** — a seeded registry of named fault injection sites
//!    compiled into `quasar-bgpsim`, `quasar-core` and `quasar-serve`
//!    behind their `testkit` cargo features. Re-exported here as `fail`
//!    when the feature is on. Arm a point with a spec like `"1in5:error"` or
//!    `"once:panic"` and the production code path fails exactly where
//!    and when the seed says it should.
//! 2. **Chaos proxy** — [`chaos::Proxy`], a seeded TCP proxy that sits
//!    between a client and a real server and mangles *delivery* without
//!    ever corrupting payload bytes: writes are split at arbitrary
//!    boundaries, chunks are delayed, streams are truncated mid-request,
//!    connections are dropped. Because every complete reply that makes
//!    it through is untouched, byte-identity against a fault-free run is
//!    a meaningful assertion.
//! 3. **Differential harness** — [`diff`], which compares two executions
//!    that must agree (sequential vs parallel refinement, served vs
//!    one-shot prediction, JSON-round-tripped vs in-memory models) and
//!    reports the *first diverging field* by JSON path instead of dumping
//!    two multi-kilobyte blobs.
//!
//! [`workload`] supplies the small shared fixtures (a hand-built model, a
//! canonical request mix, a synthetic trained model) the layers above are
//! exercised with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod defects;
pub mod diff;
pub mod streamfx;
pub mod workload;

#[cfg(feature = "testkit")]
pub use quasar_bgpsim::fail;

/// One-stop imports for test files.
pub mod prelude {
    pub use crate::chaos::{ChaosConfig, ChaosStats, Proxy};
    pub use crate::defects::DefectClass;
    pub use crate::diff::{
        diff_json, first_divergence, reply_line, sharded_vs_oneshot, states_differential,
        Divergence,
    };
    pub use crate::streamfx::{
        archive_bytes, dataset_of, full_retrain_artifact, scratch_dir, transition_scenario,
        write_archive, StreamScenario,
    };
    pub use crate::workload::{
        model_requests, tiny_trained, toy_model, toy_observers, toy_requests, TrainedFixture,
    };
    #[cfg(feature = "testkit")]
    pub use quasar_bgpsim::fail;
}
