#!/usr/bin/env bash
# Kill-and-resume durability check, at process level: a `quasar train
# --checkpoint-dir` run is killed with SIGKILL mid-refinement, resumed
# with `--resume`, and the final model must be byte-identical to an
# uninterrupted run's. Run from the repo root after a release build:
#
#   cargo build --release --bin quasar
#   bash scripts/ci_kill_resume.sh
set -euo pipefail

BIN=${QUASAR_BIN:-target/release/quasar}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$BIN" generate --out "$WORK/feeds.mrt" --scale tiny --seed 13

echo "# uninterrupted reference run"
"$BIN" train "$WORK/feeds.mrt" --out "$WORK/ref.model" \
    --checkpoint-dir "$WORK/ckpt-ref"

# SIGKILL the victim at increasing grace periods until an attempt dies
# with a checkpoint on disk. A too-early kill leaves no checkpoint (the
# --resume fallback covers that path, but it is not what this script
# proves); a too-late kill lets the run finish, which degenerates into a
# second reference run — both retry with a longer/shorter window.
outcome=none
for grace in 0.3 0.6 1.2 2.5 5 10; do
    rm -rf "$WORK/ckpt-victim" "$WORK/victim.model"
    echo "# victim run, SIGKILL after ${grace}s"
    if timeout -s KILL "$grace" \
        "$BIN" train "$WORK/feeds.mrt" --out "$WORK/victim.model" \
        --checkpoint-dir "$WORK/ckpt-victim" >/dev/null 2>&1; then
        echo "# run finished within ${grace}s — still checking equivalence"
        outcome=finished
        break
    fi
    if ls "$WORK/ckpt-victim"/ckpt-*.qck >/dev/null 2>&1; then
        outcome=killed
        break
    fi
    echo "# died before the first checkpoint landed; retrying"
done

if [ "$outcome" = none ]; then
    echo "FAIL: never killed the run with a checkpoint on disk" >&2
    exit 1
fi

if [ "$outcome" = killed ]; then
    echo "# resuming from $(ls "$WORK/ckpt-victim"/ckpt-*.qck | tail -1)"
    "$BIN" train "$WORK/feeds.mrt" --out "$WORK/victim.model" \
        --checkpoint-dir "$WORK/ckpt-victim" --resume
fi

cmp "$WORK/ref.model" "$WORK/victim.model"
if ls "$WORK/ckpt-victim"/ckpt-*.qck >/dev/null 2>&1; then
    echo "FAIL: checkpoints not cleaned up after success" >&2
    exit 1
fi
echo "OK: killed-and-resumed model is byte-identical to the uninterrupted run"
