#!/usr/bin/env bash
# Source-level lint gate: greps for patterns the workspace bans outright.
# Runs in CI next to clippy; exits nonzero with file:line locations when a
# pattern appears where it is forbidden.
#
#   bash scripts/forbidden_patterns.sh
#
# Banned patterns:
#   1. `process::exit` outside `src/bin/` trees — library code must return
#      errors; only CLI frontends may terminate the process.
#   2. `println!` in library crates (`crates/*/src`, excluding their
#      `src/bin/` trees) — libraries report through return values or, for
#      audit hooks, `eprintln!`; stdout belongs to the binaries.
#   3. `unsafe` outside the bench counting allocator
#      (crates/bench/src/bin/bench_refine.rs) — every other crate carries
#      `#![forbid(unsafe_code)]`; this keeps the grep honest even if an
#      attribute is dropped.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

report() { # <label> <matches>
    if [ -n "$2" ]; then
        echo "forbidden pattern: $1" >&2
        echo "$2" >&2
        fail=1
    fi
}

src_files() { # rust sources in lib trees: crates/*/src and src, minus src/bin
    find crates/*/src src -name '*.rs' -not -path '*src/bin/*'
}

report "process::exit outside src/bin" \
    "$(src_files | xargs grep -n 'process::exit' 2>/dev/null)"

# `(^|[^e])println!` keeps eprintln! (allowed for diagnostics) out of the net.
report "println! in library crates (stdout belongs to binaries)" \
    "$(find crates/*/src -name '*.rs' -not -path '*src/bin/*' |
        xargs grep -nE '(^|[^e])println!' 2>/dev/null)"

report "unsafe outside the bench counting allocator" \
    "$(find crates/*/src src -name '*.rs' \
        -not -path 'crates/bench/src/bin/bench_refine.rs' |
        xargs grep -n 'unsafe' 2>/dev/null | grep -v 'forbid(unsafe_code)')"

if [ "$fail" -ne 0 ]; then
    echo "forbidden_patterns: FAIL" >&2
    exit 1
fi
echo "forbidden_patterns: ok"
