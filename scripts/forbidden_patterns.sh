#!/usr/bin/env bash
# Source-level lint gate, kept as the historical entry point but now a
# thin wrapper over the in-repo static analyzer:
#
#   bash scripts/forbidden_patterns.sh
#
# runs `quasar sast --deny error`, which subsumes the old grep rules
# (QS0005 process::exit, QS0006 println! in library crates, QS0007
# unsafe) with token-accurate spans — comments and string literals no
# longer false-positive — and adds the concurrency/protocol rules
# QS0001–QS0004. See crates/sast and DESIGN.md §16 for the catalogue.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer an already-built binary (CI builds release first); fall back to
# cargo run so the script works standalone.
if [ -x target/release/quasar ]; then
    exec target/release/quasar sast --deny error
elif [ -x target/debug/quasar ]; then
    exec target/debug/quasar sast --deny error
else
    exec cargo run --quiet --bin quasar -- sast --deny error
fi
