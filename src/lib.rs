//! # quasar — an AS-topology model that captures route diversity
//!
//! A full Rust reproduction of *"Building an AS-topology model that
//! captures route diversity"* (Mühlbauer, Feldmann, Maennel, Roughan,
//! Uhlig — SIGCOMM 2006). This façade crate re-exports the workspace
//! members and provides the glue between them:
//!
//! * [`bgpsim`] — per-prefix steady-state BGP simulator (C-BGP
//!   equivalent),
//! * [`topology`] — AS-graph machinery: clique, classification,
//!   relationships,
//! * [`mrt`] — RouteViews-compatible MRT codec,
//! * [`netgen`] — synthetic Internet with ground-truth routing and
//!   observation feeds,
//! * [`model`] — the paper's contribution: quasi-router model, iterative
//!   refinement, prediction metrics,
//! * [`diversity`] — the §3 route-diversity analyses,
//! * [`serve`] — concurrent what-if/prediction query server with a
//!   per-prefix steady-state cache,
//! * [`stream`] — live BGP update ingestion: windowed delta detection,
//!   incremental retraining, zero-downtime epoch swaps into [`serve`],
//! * [`lint`] — static analyzer for trained models: typed, severity-ranked
//!   diagnostics (QL0001–QL0009) with no simulation.
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use quasar_bgpsim as bgpsim;
pub use quasar_core as model;
pub use quasar_diversity as diversity;
pub use quasar_lint as lint;
pub use quasar_mrt as mrt;
pub use quasar_netgen as netgen;
pub use quasar_serve as serve;
pub use quasar_stream as stream;
pub use quasar_topology as topology;

use quasar_core::observed::{Dataset, ObservedRoute};
use quasar_netgen::observe::{RouteObservation, SyntheticInternet};

/// Converts a synthetic Internet's feeds into the model's observed-route
/// dataset (with the paper's cleaning applied).
pub fn dataset_from(net: &SyntheticInternet) -> Dataset {
    dataset_from_observations(&net.observations)
}

/// Converts raw feed observations (e.g. re-imported from an MRT dump) into
/// a cleaned dataset.
pub fn dataset_from_observations(observations: &[RouteObservation]) -> Dataset {
    Dataset::new(observations.iter().map(|o| ObservedRoute {
        point: o.point,
        observer_as: o.observer_as,
        prefix: o.prefix,
        as_path: o.as_path.clone(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quasar_netgen::config::NetGenConfig;

    #[test]
    fn facade_conversion_preserves_routes() {
        let net = SyntheticInternet::generate(NetGenConfig::tiny(1));
        let d = dataset_from(&net);
        assert_eq!(d.len(), net.observations.len());
    }
}
