//! `quasar` — command-line frontend for the AS-routing-model pipeline.
//!
//! Subcommands:
//!   generate  --out FILE [--scale tiny|small|medium|large] [--seed N]
//!             synthesize an Internet and write its feeds as MRT
//!             TABLE_DUMP_V2 (plus FILE.updates.mrt with an UPDATE stream)
//!             (`default` and `paper` stay accepted as legacy aliases for
//!             `small` and `medium`)
//!   analyze   FILE            §3 analyses of an MRT feed file
//!   train     (FILE | --scale tiny|small|medium|large) --out MODEL.json
//!             [--threads N] [--seed N]
//!             [--checkpoint-dir D [--checkpoint-every N] [--resume]]
//!             refine a model against ALL feeds and persist it; with
//!             --scale instead of FILE, a synthetic Internet is generated
//!             at that preset and trained on directly
//!             (--threads 0 / absent = all cores; the result is
//!             byte-identical for every thread count). With
//!             --checkpoint-dir the refinement state is checkpointed
//!             every N rounds (default 1) and --resume continues an
//!             interrupted run from the latest checkpoint, producing
//!             a byte-identical final model.
//!   predict   FILE [--split point|origin|both] [--seed N]
//!             train on half the feeds, predict the other half
//!   diagnose  FILE [--seed N]
//!             train on half the feeds and attribute validation
//!             mismatches to the AS where reproduction first breaks
//!   stable    FILE [--snapshot T] [--window SECS]
//!             replay RIB+updates, keep the stable snapshot routes,
//!             print the dataset summary
//!   whatif    FILE --depeer A:B [--model MODEL.json]
//!             train on all feeds (or load a persisted model) and report
//!             the predicted impact of removing the A--B adjacency
//!   whatif    --json --model MODEL.json [--depeer A:B] [--add-peering A:B]
//!             [--filter ASN:NEIGHBOR:PREFIX]
//!             apply the changes (in flag order) to a persisted model and
//!             print the routing diff as one JSON line — byte-identical
//!             to the server's answer for the same scenario
//!   predict   --model MODEL.json --prefix P --observer N [--path A,B,C]
//!             one-shot route prediction from a persisted model, printed
//!             as one JSON line — byte-identical to the server's answer
//!   serve     MODEL.json [--listen ADDR] [--workers N] [--max-sessions N]
//!             [--max-pending N] [--deadline-ms MS] [--shards N]
//!             [--quarantine-after N] [--prewarm]
//!             long-running query server (see `quasar-serve` crate docs);
//!             --max-pending bounds the accept queue (excess connections
//!             are shed with an `overloaded` reply), --deadline-ms caps
//!             per-request compute time (0 = unlimited), --shards N runs
//!             the prefix-sharded dispatcher (0 = one shard per core),
//!             --quarantine-after N quarantines and rebuilds a shard after
//!             N panics (0 = disabled; needs --shards), --prewarm
//!             simulates every prefix into the cache(s) before the
//!             listener starts answering
//!   query     ADDR JSON [JSON...]
//!             send newline-delimited JSON requests to a running server;
//!             `overloaded` replies are retried with jittered backoff
//!   health    ADDR
//!             readiness probe: print the server's health reply (fleet +
//!             per-shard self-healing state, stream heartbeat) as one
//!             JSON line. Exit 0 when healthy, 1 when degraded, 2 on
//!             usage errors, 3 when the server is unreachable — made for
//!             wait-until-ready loops and orchestrator probes
//!   stream    --updates FILE --model OUT [--serve ADDR] [--window-ms N]
//!             [--max-window N] [--follow] [--idle-ms N] [--state DIR]
//!             [--threads N] [--max-retries N]
//!             replay (or with --follow, tail) an MRT BGP4MP update file:
//!             each window of updates is applied to the live path set,
//!             only the dirtied prefixes are re-refined, the epoch is
//!             persisted to OUT, and (with --serve) hot-swapped into a
//!             running server through its validated atomic reload. The
//!             final per-window report is printed as one JSON line.
//!             --window-ms is record time, rounded up to whole seconds,
//!             so windowing is a pure function of the stream. --state
//!             persists the trainer cache for crash-safe resume.
//!             --max-retries bounds transient-fault retries (serve
//!             transport, ingest reads); a serve outage beyond that trips
//!             the circuit breaker: training continues locally and the
//!             newest epoch is swapped in on recovery.
//!   stream-stats ADDR
//!             print the streaming status a pipeline last pushed to the
//!             server at ADDR (one JSON line; fails if none arrived yet)
//!   lint      MODEL.json [--json] [--deny warn|error]
//!             static audit of a persisted model: typed, severity-ranked
//!             diagnostics (rule ids QL0001-QL0009) with no simulation.
//!             Exit 0 when no finding reaches the --deny threshold
//!             (default error), 1 on findings at/above it or a load
//!             failure, 2 on usage errors — suitable as a CI gate
//!   sast      [--root DIR] [--json] [--deny warn|error]
//!             static audit of the workspace's own Rust sources: lock
//!             acquisition order, atomic-ordering justifications,
//!             failpoint-registry consistency, protocol exhaustiveness,
//!             forbidden patterns (rule ids QS0001-QS0007), each with a
//!             file:line:col span. Same exit-code contract as `lint`

use quasar::bgpsim::types::Asn;
use quasar::diversity::prelude::*;
use quasar::model::prelude::*;
use quasar::netgen::prelude::*;
use quasar::serve::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::exit;
use std::sync::Arc;

fn main() {
    // Register the static analyzer with the core audit hook so train /
    // resume runs log a post-training audit summary to stderr.
    quasar::lint::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing subcommand")
    };
    match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "predict" => cmd_predict(&args[1..]),
        "diagnose" => cmd_diagnose(&args[1..]),
        "stable" => cmd_stable(&args[1..]),
        "whatif" => cmd_whatif(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "health" => cmd_health(&args[1..]),
        "stream" => cmd_stream(&args[1..]),
        "stream-stats" => cmd_stream_stats(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "sast" => cmd_sast(&args[1..]),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: quasar generate --out FILE [--scale tiny|small|medium|large] [--seed N]\n\
         \x20      quasar train (FILE | --scale tiny|small|medium|large) --out MODEL.json [--threads N] [--seed N] [--checkpoint-dir D [--checkpoint-every N] [--resume]]\n\
         \x20      quasar analyze FILE\n\
         \x20      quasar predict FILE [--split point|origin|both] [--seed N]\n\
         \x20      quasar diagnose FILE [--seed N]\n\
         \x20      quasar stable FILE [--snapshot T] [--window SECS]\n\
         \x20      quasar whatif FILE --depeer A:B [--model MODEL.json]\n\
         \x20      quasar whatif --json --model MODEL.json [--depeer A:B] [--add-peering A:B] [--filter ASN:NEIGHBOR:PREFIX]\n\
         \x20      quasar predict --model MODEL.json --prefix P --observer N [--path A,B,C]\n\
         \x20      quasar serve MODEL.json [--listen ADDR] [--workers N] [--max-sessions N] [--max-pending N] [--deadline-ms MS] [--shards N] [--quarantine-after N] [--prewarm]\n\
         \x20      quasar query ADDR JSON [JSON...]\n\
         \x20      quasar health ADDR\n\
         \x20      quasar stream --updates FILE --model OUT [--serve ADDR] [--window-ms N] [--max-window N] [--follow] [--idle-ms N] [--state DIR] [--threads N] [--max-retries N]\n\
         \x20      quasar stream-stats ADDR\n\
         \x20      quasar lint MODEL.json [--json] [--deny warn|error]\n\
         \x20      quasar sast [--root DIR] [--json] [--deny warn|error]"
    );
    exit(2)
}

/// Prints an error and exits nonzero — the terminal step of every CLI
/// parse/IO failure, so a bad flag or path never silently falls back to a
/// default.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

/// Parses the value of `--name`, naming the flag and the offending value
/// on failure instead of silently substituting a default.
fn parsed_flag<T>(args: &[String], name: &str) -> Option<T>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    flag(args, name).map(|s| {
        s.parse()
            .unwrap_or_else(|e| die(format!("bad {name} `{s}`: {e}")))
    })
}

/// Parses an `A:B` AS pair, naming the flag on failure.
fn parse_as_pair(spec: &str, flag_name: &str) -> (u32, u32) {
    spec.split_once(':')
        .and_then(|(x, y)| Some((x.parse::<u32>().ok()?, y.parse::<u32>().ok()?)))
        .unwrap_or_else(|| die(format!("bad {flag_name} `{spec}`, want A:B")))
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn positional(args: &[String]) -> Option<String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a.clone());
    }
    None
}

fn load_dataset(path: &str) -> (Vec<ObservationPoint>, Dataset) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    // Prefer TABLE_DUMP_V2; fall back to the legacy 2005-era TABLE_DUMP
    // format if the file contains no V2 records.
    match import_table_dump_v2(&bytes) {
        Ok((points, obs)) if !obs.is_empty() => (points, quasar::dataset_from_observations(&obs)),
        _ => {
            let (points, obs) = import_table_dump(&bytes).unwrap_or_else(|e| {
                eprintln!("cannot parse {path} as TABLE_DUMP_V2 or TABLE_DUMP: {e}");
                exit(1)
            });
            if obs.is_empty() {
                eprintln!("{path}: no routes found in either MRT RIB format");
                exit(1)
            }
            eprintln!("{path}: legacy TABLE_DUMP format detected");
            (points, quasar::dataset_from_observations(&obs))
        }
    }
}

/// Maps a `--scale` name to a generator preset. `default` and `paper`
/// stay accepted as legacy aliases for `small` and `medium`.
fn scale_config(name: &str, seed: u64) -> Option<NetGenConfig> {
    match name {
        "tiny" => Some(NetGenConfig::tiny(seed)),
        "small" | "default" => Some(NetGenConfig::small(seed)),
        "medium" | "paper" => Some(NetGenConfig::medium(seed)),
        "large" => Some(NetGenConfig::large(seed)),
        _ => None,
    }
}

fn cmd_generate(args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| usage("generate requires --out"));
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(20051113);
    let scale = flag(args, "--scale").unwrap_or_else(|| "small".into());
    let cfg = scale_config(&scale, seed)
        .unwrap_or_else(|| usage("bad --scale, want tiny|small|medium|large"));
    eprintln!("generating {scale} internet (seed {seed}) ...");
    let net = SyntheticInternet::generate(cfg);
    let bytes = export_table_dump_v2(&net.observation_points, &net.observations);
    // Raw bytes (no persist header): the archive must stay MRT-parseable.
    atomic_write_bytes(&out, &bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1)
    });
    println!(
        "wrote {out}: {} feeds, {} routes, {} bytes",
        net.observation_points.len(),
        net.observations.len(),
        bytes.len()
    );

    // Companion archive: RIB dump + UPDATE stream with flapping.
    let ucfg = UpdateStreamConfig::default();
    let records = generate_update_stream(&net.observation_points, &net.observations, &ucfg, seed);
    let mut w = quasar::mrt::io::MrtWriter::new(Vec::new());
    for r in &records {
        w.write_record(r).expect("in-memory write");
    }
    let ubytes = w.finish().expect("in-memory flush");
    let upath = format!("{out}.updates.mrt");
    atomic_write_bytes(&upath, &ubytes).unwrap_or_else(|e| {
        eprintln!("cannot write {upath}: {e}");
        exit(1)
    });
    println!(
        "wrote {upath}: {} records, {} bytes",
        records.len(),
        ubytes.len()
    );
}

fn cmd_train(args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| usage("train requires --out"));
    let threads: usize = parsed_flag(args, "--threads").unwrap_or(0);
    let checkpoint_dir = flag(args, "--checkpoint-dir");
    let checkpoint_every: u64 = parsed_flag(args, "--checkpoint-every").unwrap_or(1);
    let resume = args.iter().any(|a| a == "--resume");
    if resume && checkpoint_dir.is_none() {
        usage("--resume requires --checkpoint-dir");
    }
    let dataset = match (positional(args), flag(args, "--scale")) {
        (Some(_), Some(_)) => usage("train takes FILE or --scale, not both"),
        (Some(path), None) => load_dataset(&path).1,
        (None, Some(scale)) => {
            let seed: u64 = parsed_flag(args, "--seed").unwrap_or(20051113);
            let cfg = scale_config(&scale, seed)
                .unwrap_or_else(|| usage("bad --scale, want tiny|small|medium|large"));
            eprintln!("generating {scale} internet (seed {seed}) ...");
            let net = SyntheticInternet::generate(cfg);
            quasar::dataset_from_observations(&net.observations)
        }
        (None, None) => usage("train requires FILE or --scale"),
    };
    let cfg = RefineConfig {
        threads,
        ..RefineConfig::default()
    };
    eprintln!(
        "refining against all {} routes on {} thread(s) ...",
        dataset.len(),
        cfg.effective_threads()
    );
    let policy = checkpoint_dir.as_ref().map(|d| CheckpointPolicy {
        dir: std::path::PathBuf::from(d),
        every: checkpoint_every.max(1),
        keep: 2,
    });
    let fresh = |policy: Option<&CheckpointPolicy>| -> (AsRoutingModel, RefineReport) {
        let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
        let report = refine_checkpointed(&mut model, &dataset, &cfg, policy)
            .unwrap_or_else(|e| die(format!("refinement failed: {e}")));
        (model, report)
    };
    let (mut model, report) = match (&policy, resume) {
        (Some(p), true) => match resume_refine(&dataset, &cfg, p) {
            Ok(resumed) => {
                eprintln!("resumed refinement from checkpoints in {}", p.dir.display());
                resumed
            }
            // No usable checkpoint is the expected state on a first run
            // (or after a crash before round 1); start fresh rather than
            // forcing callers to know whether a prior attempt got far
            // enough to write state.
            Err(RefineError::Persist(PersistError::NoCheckpoint { .. })) => {
                eprintln!("no checkpoint found in {}; starting fresh", p.dir.display());
                fresh(Some(p))
            }
            Err(e) => die(format!("cannot resume refinement: {e}")),
        },
        _ => fresh(policy.as_ref()),
    };
    model.generalize_med_preferences();
    let json = model.to_json().unwrap_or_else(|e| {
        eprintln!("cannot serialize model: {e}");
        exit(1)
    });
    quasar::model::persist::save_artifact(
        &out,
        quasar::model::persist::KIND_MODEL,
        json.as_bytes(),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1)
    });
    // The final model is durably on disk; the intermediate state has
    // served its purpose and would only confuse a later --resume.
    if let Some(p) = &policy {
        for (_, ckpt) in quasar::model::persist::list_checkpoints(&p.dir) {
            std::fs::remove_file(&ckpt).ok();
        }
    }
    let stats = model.stats();
    println!(
        "wrote {out}: converged={} | {} quasi-routers | {} rules | {} bytes",
        report.converged(),
        stats.quasi_routers,
        stats.policy_rules,
        json.len()
    );
    // Attribute any residual training mismatches to the AS where
    // reproduction first breaks — the same §5 diagnostic `quasar
    // diagnose` runs on a held-out split.
    let diag = diagnose(&model, &dataset);
    if diag.matched < diag.routes {
        println!(
            "{} of {} training routes not fully reproduced; top offender ASes:",
            diag.routes - diag.matched,
            diag.routes
        );
        for (asn, n) in diag.top_offenders(5) {
            println!("  {asn:<10} {n} routes");
        }
    }
}

fn cmd_lint(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("lint requires MODEL.json"));
    let as_json = args.iter().any(|a| a == "--json");
    let deny = match flag(args, "--deny").as_deref() {
        None => quasar::lint::Severity::Error,
        Some("info") => usage("--deny info would reject every model with an Info note; use warn"),
        Some(s) => quasar::lint::Severity::parse(s)
            .unwrap_or_else(|| usage(&format!("bad --deny `{s}`, want warn|error"))),
    };
    let model = load_model(&path);
    let report = quasar::lint::audit(&model);
    if as_json {
        let line = report
            .to_json()
            .unwrap_or_else(|e| die(format!("cannot serialize report: {e}")));
        println!("{line}");
    } else {
        print!("{}", report.render_text());
    }
    if report.denies(deny) {
        exit(1)
    }
}

fn cmd_sast(args: &[String]) {
    let root = flag(args, "--root").unwrap_or_else(|| ".".to_string());
    let as_json = args.iter().any(|a| a == "--json");
    let deny = match flag(args, "--deny").as_deref() {
        None => quasar_sast::Severity::Error,
        Some("info") => usage("--deny info would reject every informational note; use warn"),
        Some(s) => quasar_sast::Severity::parse(s)
            .unwrap_or_else(|| usage(&format!("bad --deny `{s}`, want warn|error"))),
    };
    let report = quasar_sast::analyze_workspace(std::path::Path::new(&root))
        .unwrap_or_else(|e| die(format!("cannot scan {root}: {e}")));
    if as_json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.denies(deny) {
        exit(1)
    }
}

fn load_model(path: &str) -> AsRoutingModel {
    quasar::model::persist::load_model(path).unwrap_or_else(|e| {
        eprintln!("cannot load model {path}: {e}");
        if let Some(hint) = e.hint() {
            eprintln!("hint: {hint}");
        }
        exit(1)
    })
}

fn cmd_analyze(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("analyze requires FILE"));
    let (points, dataset) = load_dataset(&path);
    let s = summarize(&dataset, &[]);
    println!("{path}: {} feeds, {} routes", points.len(), dataset.len());
    println!(
        "ASes {} | edges {} | level-1 {:?} | transit {} | stubs {}+{}",
        s.ases,
        s.edges,
        s.level1.iter().map(|a| a.0).collect::<Vec<_>>(),
        s.transit,
        s.single_homed_stubs,
        s.multi_homed_stubs
    );
    let h = PathDiversityHistogram::from_dataset(&dataset);
    println!(
        "diversity: {:.1}% of AS pairs see >1 path (max {})",
        100.0 * h.fraction_with_more_than(1),
        h.max_diversity()
    );
    let q = DiversityQuantiles::from_dataset(&dataset);
    print!("max received paths per AS, percentiles:");
    for (pct, v) in q.table1_row() {
        print!(" p{pct}={v}");
    }
    println!();
}

fn cmd_predict(args: &[String]) {
    if flag(args, "--model").is_some() {
        return cmd_predict_oneshot(args);
    }
    let path = positional(args).unwrap_or_else(|| usage("predict requires FILE"));
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(7);
    let split = flag(args, "--split").unwrap_or_else(|| "point".into());
    let (_, dataset) = load_dataset(&path);
    let (training, validation) = match split.as_str() {
        "point" => dataset.split_by_point(0.5, seed),
        "origin" => dataset.split_by_origin(0.5, seed),
        "both" => dataset.split_combined(0.5, seed),
        _ => usage("bad --split"),
    };
    eprintln!(
        "training on {} routes, validating on {} ...",
        training.len(),
        validation.len()
    );
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let report = refine(&mut model, &training, &RefineConfig::default()).unwrap_or_else(|e| {
        eprintln!("refinement failed: {e}");
        exit(1)
    });
    if split != "point" {
        // Unseen prefixes benefit from the §4.7 generalization.
        model.generalize_med_preferences();
    }
    let stats = model.stats();
    println!(
        "model: converged={} | {} quasi-routers over {} ASes | {} rules",
        report.converged(),
        stats.quasi_routers,
        stats.ases,
        stats.policy_rules
    );
    let ev = evaluate(&model, &validation);
    println!(
        "prediction: RIB-Out {:.1}% | down-to-tie-break {:.1}% | RIB-In bound {:.1}%",
        100.0 * ev.counts.rib_out_rate(),
        100.0 * ev.counts.tie_break_rate(),
        100.0 * ev.counts.rib_in_rate()
    );
}

fn cmd_diagnose(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("diagnose requires FILE"));
    let seed: u64 = parsed_flag(args, "--seed").unwrap_or(7);
    let (_, dataset) = load_dataset(&path);
    let (training, validation) = dataset.split_by_point(0.5, seed);
    eprintln!(
        "training on {} routes, diagnosing {} ...",
        training.len(),
        validation.len()
    );
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &training, &RefineConfig::default()).unwrap_or_else(|e| {
        eprintln!("refinement failed: {e}");
        exit(1)
    });
    let diag = diagnose(&model, &validation);
    println!(
        "{} of {} validation routes fully reproduced",
        diag.matched, diag.routes
    );
    println!("ASes where reproduction first breaks (top 10):");
    for (asn, n) in diag.top_offenders(10) {
        println!("  {asn:<10} {n} routes");
    }
    println!(
        "(interpretation: these ASes carry observed diversity the training\n\
         feeds never exposed — more vantage points there would help most)"
    );
}

fn cmd_stable(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("stable requires FILE"));
    let snapshot: u32 = parsed_flag(args, "--snapshot").unwrap_or(SNAPSHOT_TIME);
    let window: u32 = parsed_flag(args, "--window").unwrap_or(3_600);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let records = quasar::mrt::io::MrtReader::new(&bytes[..])
        .read_all()
        .unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1)
        });
    let (points, obs) = reconstruct_stable(&records, snapshot, window);
    let dataset = quasar::dataset_from_observations(&obs);
    println!(
        "{path}: {} records -> {} feeds, {} stable routes at t={snapshot} (window {window}s)",
        records.len(),
        points.len(),
        dataset.len()
    );
    let s = summarize(&dataset, &[]);
    println!(
        "ASes {} | edges {} | distinct paths {}",
        s.ases, s.edges, s.distinct_paths
    );
}

fn cmd_whatif(args: &[String]) {
    if args.iter().any(|a| a == "--json") {
        return cmd_whatif_json(args);
    }
    let path = positional(args).unwrap_or_else(|| usage("whatif requires FILE"));
    let spec = flag(args, "--depeer").unwrap_or_else(|| usage("whatif requires --depeer A:B"));
    let (a, b) = parse_as_pair(&spec, "--depeer");
    let (points, dataset) = load_dataset(&path);

    let model = if let Some(mp) = flag(args, "--model") {
        load_model(&mp)
    } else {
        let mut m = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
        refine(&mut m, &dataset, &RefineConfig::default()).unwrap_or_else(|e| {
            eprintln!("refinement failed: {e}");
            exit(1)
        });
        m
    };
    let mut edited = model.clone();
    let silenced = edited.depeer(Asn(a), Asn(b));
    if silenced == 0 {
        eprintln!("no sessions between AS{a} and AS{b}");
        exit(1)
    }
    let observers: Vec<Asn> = {
        let mut v: Vec<Asn> = points.iter().map(|p| p.observer_as()).collect();
        v.sort();
        v.dedup();
        v
    };
    let (mut same, mut moved, mut lost) = (0usize, 0usize, 0usize);
    for &prefix in model.prefixes().keys() {
        let before = model.simulate(prefix).expect("converges");
        let after = edited.simulate(prefix).expect("converges");
        for &obs in &observers {
            for r in model.quasi_routers_of(obs) {
                let x = before.best_route(r).map(|r| r.as_path.clone());
                let y = after.best_route(r).map(|r| r.as_path.clone());
                match (x, y) {
                    (Some(p), Some(q)) if p == q => same += 1,
                    (Some(_), Some(_)) => moved += 1,
                    (Some(_), None) => lost += 1,
                    (None, _) => {}
                }
            }
        }
    }
    println!(
        "de-peering AS{a} -- AS{b} ({silenced} sessions): {same} unchanged, {moved} re-routed, {lost} unreachable"
    );
}

/// Collects `--depeer`/`--add-peering`/`--filter` specs in flag order —
/// scenario changes apply sequentially, so order is part of the scenario.
fn collect_change_specs(args: &[String]) -> Vec<ChangeSpec> {
    let mut specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |name: &str| -> String {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| die(format!("{name} needs a value")))
        };
        match args[i].as_str() {
            "--depeer" => {
                let v = value("--depeer");
                let (a, b) = parse_as_pair(&v, "--depeer");
                specs.push(ChangeSpec::Depeer { a, b });
                i += 2;
            }
            "--add-peering" => {
                let v = value("--add-peering");
                let (a, b) = parse_as_pair(&v, "--add-peering");
                specs.push(ChangeSpec::AddPeering { a, b });
                i += 2;
            }
            "--filter" => {
                let v = value("--filter");
                let mut parts = v.splitn(3, ':');
                let spec = (|| {
                    Some(ChangeSpec::FilterPrefix {
                        asn: parts.next()?.parse().ok()?,
                        neighbor: parts.next()?.parse().ok()?,
                        prefix: parts.next()?.to_string(),
                    })
                })()
                .unwrap_or_else(|| die(format!("bad --filter `{v}`, want ASN:NEIGHBOR:PREFIX")));
                specs.push(spec);
                i += 2;
            }
            _ => i += 1,
        }
    }
    specs
}

/// Writes one line to stdout. A closed pipe (e.g. `| head`) is a normal
/// way for the reader to stop early, not a crash.
fn print_line(line: &str) {
    let mut out = std::io::stdout();
    let result = out.write_all(line.as_bytes()).and_then(|()| out.flush());
    if let Err(e) = result {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            exit(0);
        }
        die(format!("cannot write to stdout: {e}"));
    }
}

/// Prints a server response as one JSON line; error responses go to
/// stderr with a nonzero exit so scripts can trust exit codes.
fn print_response(resp: Response) {
    if let Response::Error(e) = &resp {
        die(&e.message);
    }
    let json =
        serde_json::to_string(&resp).unwrap_or_else(|e| die(format!("cannot serialize: {e}")));
    print_line(&format!("{json}\n"));
}

fn cmd_whatif_json(args: &[String]) {
    let model_path =
        flag(args, "--model").unwrap_or_else(|| usage("whatif --json requires --model MODEL.json"));
    let changes = collect_change_specs(args);
    if changes.is_empty() {
        usage("whatif --json requires at least one --depeer/--add-peering/--filter");
    }
    let state = ServerState::new(load_model(&model_path), ServeConfig::default());
    print_response(state.dispatch(&Request::Diff {
        changes,
        prefixes: None,
    }));
}

fn cmd_predict_oneshot(args: &[String]) {
    let model_path = flag(args, "--model").expect("checked by caller");
    let prefix =
        flag(args, "--prefix").unwrap_or_else(|| usage("predict --model requires --prefix P"));
    let observer: u32 = parsed_flag(args, "--observer")
        .unwrap_or_else(|| usage("predict --model requires --observer N"));
    let observed_path: Option<Vec<u32>> = flag(args, "--path").map(|s| {
        s.split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .unwrap_or_else(|e| die(format!("bad --path element `{t}`: {e}")))
            })
            .collect()
    });
    let state = ServerState::new(load_model(&model_path), ServeConfig::default());
    print_response(state.dispatch(&Request::Predict {
        prefix,
        observer,
        observed_path,
    }));
}

fn cmd_serve(args: &[String]) {
    let model_path = positional(args).unwrap_or_else(|| usage("serve requires MODEL.json"));
    let listen = flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let mut config = ServeConfig::default();
    if let Some(w) = parsed_flag::<usize>(args, "--workers") {
        config.workers = w.max(1);
    }
    if let Some(m) = parsed_flag::<usize>(args, "--max-sessions") {
        config.max_sessions = m;
    }
    if let Some(p) = parsed_flag::<usize>(args, "--max-pending") {
        config.max_pending = p.max(1);
    }
    if let Some(d) = parsed_flag::<u64>(args, "--deadline-ms") {
        config.deadline_ms = d;
    }
    if let Some(q) = parsed_flag::<u64>(args, "--quarantine-after") {
        config.quarantine_threshold = q;
    }
    // --shards N selects the prefix-sharded dispatcher (0 = one shard
    // per core); without the flag the single-epoch server runs, as
    // before. Replies are byte-identical either way.
    let shards = parsed_flag::<usize>(args, "--shards").map(|n| {
        if n == 0 {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(4)
        } else {
            n
        }
    });
    if config.quarantine_threshold > 0 && shards.is_none() {
        eprintln!("note: --quarantine-after only takes effect with --shards");
    }
    let prewarm = args.iter().any(|a| a == "--prewarm");
    let model = load_model(&model_path);
    let stats = model.stats();
    let listener = TcpListener::bind(&listen)
        .unwrap_or_else(|e| die(format!("cannot listen on {listen}: {e}")));
    let addr = listener
        .local_addr()
        .unwrap_or_else(|e| die(format!("cannot resolve listen address: {e}")));
    // The address line goes first and alone to stdout so wrappers (tests,
    // scripts) can read the ephemeral port; progress chatter is stderr.
    println!("quasar-serve listening on {addr}");
    std::io::stdout().flush().ok();
    eprintln!(
        "serving {} prefixes over {} ASes ({} quasi-routers) with {} worker(s){}",
        model.prefixes().len(),
        stats.ases,
        stats.quasi_routers,
        config.workers,
        match shards {
            Some(n) => format!(" across {n} shard(s)"),
            None => String::new(),
        }
    );
    let result = match shards {
        Some(n) => {
            let state = Arc::new(quasar::serve::shard::ShardedState::new(model, config, n));
            if prewarm {
                // Warm before serving so the first client hits a full
                // cache; the listener is bound but not yet accepting.
                let warmed = state.prewarm();
                eprintln!("prewarmed {warmed} prefix(es) across {} shard(s)", n);
            }
            quasar::serve::server::serve(state, listener)
        }
        None => {
            let state = Arc::new(ServerState::new(model, config));
            if prewarm {
                let warmed = state.prewarm();
                eprintln!("prewarmed {warmed} prefix(es)");
            }
            quasar::serve::server::serve(state, listener)
        }
    };
    if let Err(e) = result {
        die(format!("serve failed: {e}"));
    }
    eprintln!("quasar-serve drained, exiting");
}

/// A lazily-(re)connected client connection to the query server. A shed
/// connection is closed by the server after its `overloaded` reply, so the
/// client must be able to reconnect between attempts.
struct QueryClient {
    addr: String,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
}

impl QueryClient {
    fn new(addr: &str) -> Self {
        QueryClient {
            addr: addr.to_string(),
            conn: None,
        }
    }

    /// Sends one request line and reads one reply line, connecting first
    /// if needed. Any transport failure drops the cached connection so the
    /// next attempt starts from a fresh connect.
    fn exchange(&mut self, json: &str) -> Result<String, String> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
            let reader = stream
                .try_clone()
                .map_err(|e| format!("cannot clone connection: {e}"))?;
            self.conn = Some((stream, BufReader::new(reader)));
        }
        let (stream, reader) = self.conn.as_mut().expect("connected above");
        let result = stream
            .write_all(format!("{json}\n").as_bytes())
            .map_err(|e| format!("cannot send to {}: {e}", self.addr))
            .and_then(|()| {
                let mut reply = String::new();
                reader
                    .read_line(&mut reply)
                    .map_err(|e| format!("cannot read reply: {e}"))?;
                if reply.is_empty() {
                    return Err("server closed the connection".into());
                }
                Ok(reply)
            });
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

/// How many times a request that keeps drawing `overloaded` replies is
/// retried before the last reply is surfaced to the caller.
const QUERY_MAX_RETRIES: u32 = 5;

fn cmd_stream(args: &[String]) {
    use quasar::stream::prelude::*;
    let updates = flag(args, "--updates").unwrap_or_else(|| usage("stream requires --updates"));
    let model_out = flag(args, "--model").unwrap_or_else(|| usage("stream requires --model"));
    let window_ms: u64 = parsed_flag(args, "--window-ms").unwrap_or(1_000);
    let cfg = StreamConfig {
        updates: updates.into(),
        model_out: model_out.into(),
        state_dir: flag(args, "--state").map(Into::into),
        serve_addr: flag(args, "--serve"),
        // Record timestamps have one-second resolution, so sub-second
        // requests round up to the smallest honest window.
        window_secs: window_ms.div_ceil(1_000).max(1).min(u64::from(u32::MAX)) as u32,
        max_window_updates: parsed_flag(args, "--max-window").unwrap_or(10_000),
        follow: args.iter().any(|a| a == "--follow"),
        idle_timeout_ms: parsed_flag(args, "--idle-ms").unwrap_or(2_000),
        threads: parsed_flag(args, "--threads").unwrap_or(0),
        max_retries: parsed_flag(args, "--max-retries").unwrap_or(3),
        ..StreamConfig::default()
    };
    let mut pipeline = Pipeline::new(cfg).unwrap_or_else(|e| die(e));
    let report = pipeline.run_file().unwrap_or_else(|e| die(e));
    let json =
        serde_json::to_string(&report).unwrap_or_else(|e| die(format!("cannot serialize: {e}")));
    print_line(&json);
    // A source-side fault (truncated tail, undecodable frame) degraded
    // gracefully — every prior window was served — but scripts must see
    // that the stream did not run to completion.
    if report.source_error.is_some() {
        exit(1);
    }
}

fn cmd_stream_stats(args: &[String]) {
    let Some(addr) = positional(args) else {
        usage("stream-stats requires ADDR")
    };
    let metrics = quasar::stream::client::ServeClient::new(addr)
        .metrics()
        .unwrap_or_else(|e| die(e));
    match metrics.stream {
        Some(status) => {
            let json = serde_json::to_string(&status)
                .unwrap_or_else(|e| die(format!("cannot serialize: {e}")));
            print_line(&json);
        }
        None => die("no streaming pipeline has reported to this server yet"),
    }
}

fn cmd_health(args: &[String]) {
    let Some(addr) = positional(args) else {
        usage("health requires ADDR")
    };
    // Readiness-probe exit codes: 0 healthy, 1 degraded (reachable but a
    // shard is quarantined or rebuilding), 3 unreachable. Orchestrators
    // route on the code; humans read the JSON line.
    match quasar::stream::client::ServeClient::new(addr).health() {
        Ok(health) => {
            let json = serde_json::to_string(&health)
                .unwrap_or_else(|e| die(format!("cannot serialize: {e}")));
            print_line(&json);
            if health.status != "healthy" {
                exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(3);
        }
    }
}

fn cmd_query(args: &[String]) {
    let (addr, lines) = match args.split_first() {
        Some((a, rest)) if !rest.is_empty() && !a.starts_with("--") => (a, rest),
        _ => usage("query requires ADDR and at least one JSON request"),
    };
    let mut client = QueryClient::new(addr);
    // Seeded per process so parallel clients retrying against the same
    // overloaded server spread out instead of stampeding in lockstep:
    // 10ms doubling per attempt with up to +50% jitter, the workspace's
    // shared backoff policy.
    let mut backoff = quasar::model::backoff::Backoff::new(
        10,
        10_000,
        u64::from(std::process::id()) ^ 0x5155_4153_4152_3121,
    );
    let mut failed = false;
    for line in lines {
        // Validate locally first: a typo should produce a parse error
        // naming the offending input, not a server round trip.
        let req: Request = serde_json::from_str(line)
            .unwrap_or_else(|e| die(format!("bad request `{line}`: {e}")));
        let json = serde_json::to_string(&req)
            .unwrap_or_else(|e| die(format!("cannot serialize request: {e}")));
        // Each request starts its schedule over; the jitter stream keeps
        // advancing so retries never re-correlate.
        backoff.reset();
        let reply = loop {
            let reply = client.exchange(&json).unwrap_or_else(|e| die(e));
            let overloaded = matches!(serde_json::from_str(&reply), Ok(Response::Overloaded(_)));
            if !overloaded || backoff.attempt() >= QUERY_MAX_RETRIES {
                break reply;
            }
            // A deadline-exceeded reply is NOT retried — the request
            // itself is too expensive, and retrying would re-burn the
            // server's budget.
            let delay = backoff.next_delay();
            eprintln!(
                "server overloaded; retry {}/{QUERY_MAX_RETRIES} in {}ms",
                backoff.attempt(),
                delay.as_millis()
            );
            std::thread::sleep(delay);
        };
        print_line(&reply);
        // An error reply, or an overload that outlived every retry, means
        // the request did not get a real answer — scripts must see that
        // in the exit code.
        if matches!(
            serde_json::from_str(&reply),
            Ok(Response::Error(_)) | Ok(Response::Overloaded(_))
        ) {
            failed = true;
        }
    }
    if failed {
        exit(1);
    }
}
