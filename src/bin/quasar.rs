//! `quasar` — command-line frontend for the AS-routing-model pipeline.
//!
//! Subcommands:
//!   generate  --out FILE [--scale tiny|default|paper] [--seed N]
//!             synthesize an Internet and write its feeds as MRT
//!             TABLE_DUMP_V2 (plus FILE.updates.mrt with an UPDATE stream)
//!   analyze   FILE            §3 analyses of an MRT feed file
//!   train     FILE --out MODEL.json [--threads N]
//!             refine a model against ALL feeds and persist it
//!             (--threads 0 / absent = all cores; the result is
//!             byte-identical for every thread count)
//!   predict   FILE [--split point|origin|both] [--seed N]
//!             train on half the feeds, predict the other half
//!   diagnose  FILE [--seed N]
//!             train on half the feeds and attribute validation
//!             mismatches to the AS where reproduction first breaks
//!   stable    FILE [--snapshot T] [--window SECS]
//!             replay RIB+updates, keep the stable snapshot routes,
//!             print the dataset summary
//!   whatif    FILE --depeer A:B [--model MODEL.json]
//!             train on all feeds (or load a persisted model) and report
//!             the predicted impact of removing the A--B adjacency

use quasar::bgpsim::types::Asn;
use quasar::diversity::prelude::*;
use quasar::model::prelude::*;
use quasar::netgen::prelude::*;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing subcommand")
    };
    match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "predict" => cmd_predict(&args[1..]),
        "diagnose" => cmd_diagnose(&args[1..]),
        "stable" => cmd_stable(&args[1..]),
        "whatif" => cmd_whatif(&args[1..]),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: quasar generate --out FILE [--scale tiny|default|paper] [--seed N]\n\
         \x20      quasar train FILE --out MODEL.json [--threads N]\n\
         \x20      quasar analyze FILE\n\
         \x20      quasar predict FILE [--split point|origin|both] [--seed N]\n\
         \x20      quasar diagnose FILE [--seed N]\n\
         \x20      quasar stable FILE [--snapshot T] [--window SECS]\n\
         \x20      quasar whatif FILE --depeer A:B [--model MODEL.json]"
    );
    exit(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn positional(args: &[String]) -> Option<String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a.clone());
    }
    None
}

fn load_dataset(path: &str) -> (Vec<ObservationPoint>, Dataset) {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    // Prefer TABLE_DUMP_V2; fall back to the legacy 2005-era TABLE_DUMP
    // format if the file contains no V2 records.
    match import_table_dump_v2(&bytes) {
        Ok((points, obs)) if !obs.is_empty() => (points, quasar::dataset_from_observations(&obs)),
        _ => {
            let (points, obs) = import_table_dump(&bytes).unwrap_or_else(|e| {
                eprintln!("cannot parse {path} as TABLE_DUMP_V2 or TABLE_DUMP: {e}");
                exit(1)
            });
            if obs.is_empty() {
                eprintln!("{path}: no routes found in either MRT RIB format");
                exit(1)
            }
            eprintln!("{path}: legacy TABLE_DUMP format detected");
            (points, quasar::dataset_from_observations(&obs))
        }
    }
}

fn cmd_generate(args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| usage("generate requires --out"));
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20051113);
    let scale = flag(args, "--scale").unwrap_or_else(|| "default".into());
    let cfg = match scale.as_str() {
        "tiny" => NetGenConfig::tiny(seed),
        "default" => NetGenConfig {
            seed,
            ..NetGenConfig::default()
        },
        "paper" => NetGenConfig::paper_scale(seed),
        _ => usage("bad --scale"),
    };
    eprintln!("generating {scale} internet (seed {seed}) ...");
    let net = SyntheticInternet::generate(cfg);
    let bytes = export_table_dump_v2(&net.observation_points, &net.observations);
    std::fs::write(&out, &bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1)
    });
    println!(
        "wrote {out}: {} feeds, {} routes, {} bytes",
        net.observation_points.len(),
        net.observations.len(),
        bytes.len()
    );

    // Companion archive: RIB dump + UPDATE stream with flapping.
    let ucfg = UpdateStreamConfig::default();
    let records = generate_update_stream(&net.observation_points, &net.observations, &ucfg, seed);
    let mut w = quasar::mrt::io::MrtWriter::new(Vec::new());
    for r in &records {
        w.write_record(r).expect("in-memory write");
    }
    let ubytes = w.finish().expect("in-memory flush");
    let upath = format!("{out}.updates.mrt");
    std::fs::write(&upath, &ubytes).unwrap_or_else(|e| {
        eprintln!("cannot write {upath}: {e}");
        exit(1)
    });
    println!(
        "wrote {upath}: {} records, {} bytes",
        records.len(),
        ubytes.len()
    );
}

fn cmd_train(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("train requires FILE"));
    let out = flag(args, "--out").unwrap_or_else(|| usage("train requires --out"));
    let threads: usize = flag(args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (_, dataset) = load_dataset(&path);
    let cfg = RefineConfig {
        threads,
        ..RefineConfig::default()
    };
    eprintln!(
        "refining against all {} routes on {} thread(s) ...",
        dataset.len(),
        cfg.effective_threads()
    );
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let report = refine(&mut model, &dataset, &cfg).unwrap_or_else(|e| {
        eprintln!("refinement failed: {e}");
        exit(1)
    });
    model.generalize_med_preferences();
    let json = model.to_json().unwrap_or_else(|e| {
        eprintln!("cannot serialize model: {e}");
        exit(1)
    });
    std::fs::write(&out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1)
    });
    let stats = model.stats();
    println!(
        "wrote {out}: converged={} | {} quasi-routers | {} rules | {} bytes",
        report.converged(),
        stats.quasi_routers,
        stats.policy_rules,
        json.len()
    );
}

fn load_model(path: &str) -> AsRoutingModel {
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    AsRoutingModel::from_json(&json).unwrap_or_else(|e| {
        eprintln!("cannot parse model {path}: {e}");
        exit(1)
    })
}

fn cmd_analyze(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("analyze requires FILE"));
    let (points, dataset) = load_dataset(&path);
    let s = summarize(&dataset, &[]);
    println!("{path}: {} feeds, {} routes", points.len(), dataset.len());
    println!(
        "ASes {} | edges {} | level-1 {:?} | transit {} | stubs {}+{}",
        s.ases,
        s.edges,
        s.level1.iter().map(|a| a.0).collect::<Vec<_>>(),
        s.transit,
        s.single_homed_stubs,
        s.multi_homed_stubs
    );
    let h = PathDiversityHistogram::from_dataset(&dataset);
    println!(
        "diversity: {:.1}% of AS pairs see >1 path (max {})",
        100.0 * h.fraction_with_more_than(1),
        h.max_diversity()
    );
    let q = DiversityQuantiles::from_dataset(&dataset);
    print!("max received paths per AS, percentiles:");
    for (pct, v) in q.table1_row() {
        print!(" p{pct}={v}");
    }
    println!();
}

fn cmd_predict(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("predict requires FILE"));
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let split = flag(args, "--split").unwrap_or_else(|| "point".into());
    let (_, dataset) = load_dataset(&path);
    let (training, validation) = match split.as_str() {
        "point" => dataset.split_by_point(0.5, seed),
        "origin" => dataset.split_by_origin(0.5, seed),
        "both" => dataset.split_combined(0.5, seed),
        _ => usage("bad --split"),
    };
    eprintln!(
        "training on {} routes, validating on {} ...",
        training.len(),
        validation.len()
    );
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    let report = refine(&mut model, &training, &RefineConfig::default()).unwrap_or_else(|e| {
        eprintln!("refinement failed: {e}");
        exit(1)
    });
    if split != "point" {
        // Unseen prefixes benefit from the §4.7 generalization.
        model.generalize_med_preferences();
    }
    let stats = model.stats();
    println!(
        "model: converged={} | {} quasi-routers over {} ASes | {} rules",
        report.converged(),
        stats.quasi_routers,
        stats.ases,
        stats.policy_rules
    );
    let ev = evaluate(&model, &validation);
    println!(
        "prediction: RIB-Out {:.1}% | down-to-tie-break {:.1}% | RIB-In bound {:.1}%",
        100.0 * ev.counts.rib_out_rate(),
        100.0 * ev.counts.tie_break_rate(),
        100.0 * ev.counts.rib_in_rate()
    );
}

fn cmd_diagnose(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("diagnose requires FILE"));
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let (_, dataset) = load_dataset(&path);
    let (training, validation) = dataset.split_by_point(0.5, seed);
    eprintln!(
        "training on {} routes, diagnosing {} ...",
        training.len(),
        validation.len()
    );
    let mut model = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
    refine(&mut model, &training, &RefineConfig::default()).unwrap_or_else(|e| {
        eprintln!("refinement failed: {e}");
        exit(1)
    });
    let diag = diagnose(&model, &validation);
    println!(
        "{} of {} validation routes fully reproduced",
        diag.matched, diag.routes
    );
    println!("ASes where reproduction first breaks (top 10):");
    for (asn, n) in diag.top_offenders(10) {
        println!("  {asn:<10} {n} routes");
    }
    println!(
        "(interpretation: these ASes carry observed diversity the training\n\
         feeds never exposed — more vantage points there would help most)"
    );
}

fn cmd_stable(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("stable requires FILE"));
    let snapshot: u32 = flag(args, "--snapshot")
        .and_then(|s| s.parse().ok())
        .unwrap_or(SNAPSHOT_TIME);
    let window: u32 = flag(args, "--window")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_600);
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let records = quasar::mrt::io::MrtReader::new(&bytes[..])
        .read_all()
        .unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1)
        });
    let (points, obs) = reconstruct_stable(&records, snapshot, window);
    let dataset = quasar::dataset_from_observations(&obs);
    println!(
        "{path}: {} records -> {} feeds, {} stable routes at t={snapshot} (window {window}s)",
        records.len(),
        points.len(),
        dataset.len()
    );
    let s = summarize(&dataset, &[]);
    println!(
        "ASes {} | edges {} | distinct paths {}",
        s.ases, s.edges, s.distinct_paths
    );
}

fn cmd_whatif(args: &[String]) {
    let path = positional(args).unwrap_or_else(|| usage("whatif requires FILE"));
    let spec = flag(args, "--depeer").unwrap_or_else(|| usage("whatif requires --depeer A:B"));
    let (a, b) = spec
        .split_once(':')
        .and_then(|(x, y)| Some((x.parse::<u32>().ok()?, y.parse::<u32>().ok()?)))
        .unwrap_or_else(|| usage("bad --depeer, want A:B"));
    let (points, dataset) = load_dataset(&path);

    let model = if let Some(mp) = flag(args, "--model") {
        load_model(&mp)
    } else {
        let mut m = AsRoutingModel::initial(&dataset.as_graph(), &dataset.prefixes());
        refine(&mut m, &dataset, &RefineConfig::default()).unwrap_or_else(|e| {
            eprintln!("refinement failed: {e}");
            exit(1)
        });
        m
    };
    let mut edited = model.clone();
    let silenced = edited.depeer(Asn(a), Asn(b));
    if silenced == 0 {
        eprintln!("no sessions between AS{a} and AS{b}");
        exit(1)
    }
    let observers: Vec<Asn> = {
        let mut v: Vec<Asn> = points.iter().map(|p| p.observer_as()).collect();
        v.sort();
        v.dedup();
        v
    };
    let (mut same, mut moved, mut lost) = (0usize, 0usize, 0usize);
    for &prefix in model.prefixes().keys() {
        let before = model.simulate(prefix).expect("converges");
        let after = edited.simulate(prefix).expect("converges");
        for &obs in &observers {
            for r in model.quasi_routers_of(obs) {
                let x = before.best_route(r).map(|r| r.as_path.clone());
                let y = after.best_route(r).map(|r| r.as_path.clone());
                match (x, y) {
                    (Some(p), Some(q)) if p == q => same += 1,
                    (Some(_), Some(_)) => moved += 1,
                    (Some(_), None) => lost += 1,
                    (None, _) => {}
                }
            }
        }
    }
    println!(
        "de-peering AS{a} -- AS{b} ({silenced} sessions): {same} unchanged, {moved} re-routed, {lost} unreachable"
    );
}
