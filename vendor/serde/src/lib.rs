//! Minimal, self-contained replacement for the public `serde` surface this
//! workspace uses. The build environment has no network access, so the real
//! crates cannot be fetched; this vendored stand-in keeps the same trait
//! names and call shapes (`Serialize`, `Deserialize`, `Serializer`,
//! `Deserializer`, `#[derive(Serialize, Deserialize)]`, `#[serde(skip)]`,
//! `#[serde(with = "module")]`) over a simple content-tree data model.
//!
//! Everything serializes into a [`Content`] tree first; format crates (the
//! vendored `serde_json`) render that tree. Determinism matters here:
//! unordered containers (`HashMap`, `HashSet`) are sorted by key content
//! before serialization so repeated runs produce byte-identical output.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value entries.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Total order over content trees (floats via `total_cmp`), used to give
    /// unordered containers a canonical serialization order.
    pub fn total_cmp(&self, other: &Content) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(c: &Content) -> u8 {
            match c {
                Content::Null => 0,
                Content::Bool(_) => 1,
                Content::U64(_) => 2,
                Content::I64(_) => 3,
                Content::F64(_) => 4,
                Content::Str(_) => 5,
                Content::Seq(_) => 6,
                Content::Map(_) => 7,
            }
        }
        match (self, other) {
            (Content::Bool(a), Content::Bool(b)) => a.cmp(b),
            (Content::U64(a), Content::U64(b)) => a.cmp(b),
            (Content::I64(a), Content::I64(b)) => a.cmp(b),
            (Content::F64(a), Content::F64(b)) => a.total_cmp(b),
            (Content::Str(a), Content::Str(b)) => a.cmp(b),
            (Content::Seq(a), Content::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Content::Map(a), Content::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    match ka.total_cmp(kb) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                    match va.total_cmp(vb) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Error constructors every `Deserializer::Error` must provide so the
/// blanket [`Deserialize::deserialize`] can surface content errors.
pub trait DeserializeError: Sized {
    /// Wraps a content-level error into the format error type.
    fn from_content_error(e: content::ContentError) -> Self;
}

/// Output side of a serialization format.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Format error type.
    type Error;
    /// Consumes a content tree, producing the format's output.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// Input side of a serialization format.
pub trait Deserializer<'de>: Sized {
    /// Format error type.
    type Error: DeserializeError;
    /// Produces the content tree carried by this deserializer.
    fn into_content(self) -> Result<Content, Self::Error>;
}

/// A type that can be serialized.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;

    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a content tree.
    fn from_content(content: &Content) -> Result<Self, content::ContentError>;

    /// Deserializes `Self` out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.into_content()?;
        Self::from_content(&c).map_err(D::Error::from_content_error)
    }
}

/// Owned-deserializable marker, mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod content {
    //! Content-tree plumbing used by the derive macros and `with`-modules.

    use super::{Content, DeserializeError, Deserializer, Serializer};

    /// Error produced while converting content trees to values.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ContentError(pub String);

    impl ContentError {
        /// Builds an error from a message.
        pub fn msg(m: impl Into<String>) -> Self {
            ContentError(m.into())
        }
    }

    impl std::fmt::Display for ContentError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl DeserializeError for ContentError {
        fn from_content_error(e: ContentError) -> Self {
            e
        }
    }

    /// Serializer that just hands back the content tree (for `with`-modules).
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;
        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Deserializer over a borrowed content tree (for `with`-modules).
    pub struct ContentDeserializer<'a>(pub &'a Content);

    impl<'de, 'a> Deserializer<'de> for ContentDeserializer<'a> {
        type Error = ContentError;
        fn into_content(self) -> Result<Content, ContentError> {
            Ok(self.0.clone())
        }
    }

    /// Looks up a struct field by name in a `Content::Map`.
    pub fn field<'a>(c: &'a Content, name: &str) -> Result<Option<&'a Content>, ContentError> {
        match c {
            Content::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
                .map(|(_, v)| v)),
            other => Err(ContentError::msg(format!(
                "expected map while reading field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Splits enum content into `(variant_name, payload)`.
    pub fn enum_parts(c: &Content) -> Result<(&str, Option<&Content>), ContentError> {
        match c {
            Content::Str(s) => Ok((s.as_str(), None)),
            Content::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Content::Str(name), payload) => Ok((name.as_str(), Some(payload))),
                (k, _) => Err(ContentError::msg(format!(
                    "enum variant key must be a string, got {k:?}"
                ))),
            },
            other => Err(ContentError::msg(format!(
                "expected enum content, got {other:?}"
            ))),
        }
    }

    /// Returns the items of a `Content::Seq` of exactly `n` elements.
    pub fn seq_items(c: &Content, n: usize) -> Result<&[Content], ContentError> {
        match c {
            Content::Seq(items) if items.len() == n => Ok(items),
            Content::Seq(items) => Err(ContentError::msg(format!(
                "expected sequence of {n} elements, got {}",
                items.len()
            ))),
            other => Err(ContentError::msg(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

use content::ContentError;

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| ContentError::msg(format!("invalid integer `{s}`")))?,
                    other => {
                        return Err(ContentError::msg(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| ContentError::msg(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                let v = match c {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| ContentError::msg(format!("integer {v} out of range")))?,
                    Content::I64(v) => *v,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| ContentError::msg(format!("invalid integer `{s}`")))?,
                    other => {
                        return Err(ContentError::msg(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| ContentError::msg(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                match c {
                    Content::F64(f) => Ok(*f as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| ContentError::msg(format!("invalid float `{s}`"))),
                    other => Err(ContentError::msg(format!(
                        "expected float, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(ContentError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(ContentError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        Ok(Box::new(T::from_content(c)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(ContentError::msg(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        let items = content::seq_items(c, N)?;
        let mut out = Vec::with_capacity(N);
        for item in items {
            out.push(T::from_content(item)?);
        }
        out.try_into()
            .map_err(|_| ContentError::msg("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, ContentError> {
                const LEN: usize = [$(stringify!($idx)),+].len();
                let items = content::seq_items(c, LEN)?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

fn map_to_content<'a, K, V, I>(entries: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Content::Map(
        entries
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect(),
    )
}

fn map_from_content<'de, K, V, M>(c: &Content) -> Result<M, ContentError>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    M: FromIterator<(K, V)>,
{
    match c {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect(),
        // Maps with structured keys serialize as sequences of [k, v] pairs.
        Content::Seq(items) => items
            .iter()
            .map(|pair| {
                let kv = content::seq_items(pair, 2)?;
                Ok((K::from_content(&kv[0])?, V::from_content(&kv[1])?))
            })
            .collect(),
        other => Err(ContentError::msg(format!("expected map, got {other:?}"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        map_from_content(c)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        Content::Map(entries)
    }
}
impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        map_from_content(c)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(ContentError::msg(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(|a, b| a.total_cmp(b));
        Content::Seq(items)
    }
}
impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(ContentError::msg(format!(
                "expected sequence, got {other:?}"
            ))),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl<'de> Deserialize<'de> for () {
    fn from_content(_: &Content) -> Result<Self, ContentError> {
        Ok(())
    }
}
