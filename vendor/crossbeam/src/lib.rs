//! Minimal replacement for the `crossbeam::thread` scoped-thread API,
//! implemented over `std::thread::scope` (available since Rust 1.63).

pub mod thread {
    //! Scoped threads with the crossbeam call shape:
    //! `scope(|s| { s.spawn(|_| ...); ... })` returning a `Result`.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Boxed panic payload.
    pub type Payload = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle; spawn closures receive a copy of it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads, mirroring crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Runs `f` with a thread scope; all spawned threads are joined before
    /// this returns. A panic in any spawned thread (or in `f`) surfaces as
    /// `Err` with the panic payload, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
