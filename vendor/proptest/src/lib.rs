//! Minimal, deterministic replacement for the `proptest` surface this
//! workspace uses. No shrinking: failing inputs are reported with the
//! case's seed so a failure can be replayed (every run is deterministic —
//! the RNG is seeded from the test name).
//!
//! Supported: `proptest! { #![proptest_config(..)] #[test] fn f(x in S) {..} }`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//! `prop_oneof!`, `Just`, `any::<T>()`, integer range strategies, tuple
//! strategies, `prop_map`, `collection::vec`, `option::of`, `prop::bool::ANY`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy for `Vec`s with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies.

    use crate::strategy::{OptionStrategy, Strategy};

    /// Strategy producing `None` about a quarter of the time, `Some`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Uniform boolean strategy.
    pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
}

pub mod arbitrary {
    //! Canonical strategies per type.

    use crate::strategy::BoolAny;
    use std::ops::RangeInclusive;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: crate::strategy::Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = BoolAny;
        fn arbitrary() -> Self::Strategy {
            BoolAny
        }
    }
}

/// Canonical whole-domain strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prop {
    //! Namespaced re-exports matching `proptest::prelude::prop::*`.
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::any;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each function body runs for `config.cases`
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($cfg) $($rest)*}
    };
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*}
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(
            ::std::vec![$(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+]
        )
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            ::std::vec![$($crate::strategy::Strategy::boxed($arm)),+]
        )
    };
}
