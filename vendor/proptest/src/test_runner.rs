//! Deterministic property-test driver.

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assumption violated; the case is skipped, not failed.
    Reject,
    /// Assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result of a single case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `f` until `config.cases` cases pass; panics on the first failure.
/// Fully deterministic: the RNG seed derives from the test name.
pub fn run<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    use rand::SeedableRng;
    let seed = fnv1a(name);
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = (config.cases as u64) * 32 + 1024;
    while passed < config.cases {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing cases \
                     (seed {seed:#018x}): {msg}"
                );
            }
        }
    }
}
