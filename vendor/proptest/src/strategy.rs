//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F, T>
    where
        Self: Sized,
    {
        Map {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy, see [`Strategy::prop_map`].
pub struct Map<S, F, T> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F, T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from a small regex subset: literal characters,
/// `[a-z0-9_]` classes (ranges and singletons), and the quantifiers
/// `{n}`, `{m,n}`, `?`, `*`, `+` (star/plus capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .expect("unclosed character class in string strategy");
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("unclosed repetition in string strategy");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad repetition bound"),
                            hi.trim().parse().expect("bad repetition bound"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(!alphabet.is_empty(), "empty character class");
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }
}

/// Uniform boolean strategy (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub lo: usize,
    /// Maximum length (inclusive).
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec`s, see [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy for `Option`s, see [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Choice between several strategies of the same value type
/// (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}
