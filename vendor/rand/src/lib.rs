//! Minimal, deterministic replacement for the `rand 0.8` surface this
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! and fully deterministic, which is all the workspace requires (every call
//! site seeds explicitly with `seed_from_u64`).

/// Core random number generation.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Standard generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience methods over any RNG.
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
