//! Minimal replacement for the `parking_lot` lock API used by this
//! workspace, backed by `std::sync` (poisoning is swallowed, matching
//! parking_lot's no-poisoning semantics).

/// Guard type for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutex without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
