//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! The build environment has no network access, so `syn`/`quote` are not
//! available; the input item is parsed from its token-stream text with a
//! small hand-rolled scanner. Supported shapes are exactly what this
//! workspace uses: non-generic named structs, tuple structs, and enums with
//! unit / tuple / struct variants, plus the field attributes
//! `#[serde(skip)]`, `#[serde(default)]` and `#[serde(with = "module")]`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_def(&input.to_string());
    emit_serialize(&def)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_def(&input.to_string());
    emit_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Def {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Field {
    name: String,
    ty: String,
    skip: bool,
    default: bool,
    with: Option<String>,
}

struct Variant {
    name: String,
    fields: Fields,
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

struct Cursor {
    chars: Vec<char>,
    i: usize,
}

impl Cursor {
    fn new(s: &str) -> Self {
        Cursor {
            chars: s.chars().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.i += 1;
            }
            // Doc comments survive in the token-stream text; skip them.
            if self.peek() == Some('/') && self.chars.get(self.i + 1) == Some(&'/') {
                while !matches!(self.peek(), None | Some('\n')) {
                    self.i += 1;
                }
            } else if self.peek() == Some('/') && self.chars.get(self.i + 1) == Some(&'*') {
                self.i += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(), self.chars.get(self.i + 1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            self.i += 2;
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            self.i += 2;
                        }
                        (Some(_), _) => self.i += 1,
                        (None, _) => panic!("unterminated block comment"),
                    }
                }
            } else {
                return;
            }
        }
    }

    fn read_ident(&mut self) -> String {
        self.skip_ws();
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.i += 1;
        }
        self.chars[start..self.i].iter().collect()
    }

    /// Consumes a string literal body (opening quote already consumed).
    fn skip_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Reads a balanced `open`..`close` group (cursor on `open`), returning
    /// the inner text. String literals are honoured; `'` is treated as a
    /// char literal only when it closes within two characters (otherwise it
    /// is a lifetime).
    fn read_balanced(&mut self, open: char, close: char) -> String {
        self.skip_ws();
        assert_eq!(self.bump(), Some(open), "expected `{open}`");
        let start = self.i;
        let mut depth = 1usize;
        loop {
            if self.peek() == Some('/')
                && matches!(self.chars.get(self.i + 1), Some(&'/') | Some(&'*'))
            {
                self.skip_ws();
            }
            let Some(c) = self.bump() else { break };
            match c {
                '"' => self.skip_string(),
                // char literal: 'x' or '\n' (a bare ' is a lifetime —
                // nothing to skip then)
                '\'' if self.chars.get(self.i + 1) == Some(&'\'') || self.peek() == Some('\\') => {
                    if self.peek() == Some('\\') {
                        self.bump();
                    }
                    self.bump();
                    self.bump();
                }
                c if c == open => depth += 1,
                c if c == close => {
                    depth -= 1;
                    if depth == 0 {
                        return self.chars[start..self.i - 1].iter().collect();
                    }
                }
                _ => {}
            }
        }
        panic!("unbalanced `{open}`..`{close}` group");
    }

    /// Reads one `#[...]` attribute (cursor on `#`) and returns its inner
    /// text.
    fn read_attr(&mut self) -> String {
        assert_eq!(self.bump(), Some('#'));
        self.skip_ws();
        if self.peek() == Some('!') {
            self.bump();
            self.skip_ws();
        }
        self.read_balanced('[', ']')
    }
}

/// Splits `s` on top-level commas (depth-aware across `()[]{}<>`, string
/// aware).
fn split_top_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut depth = 0isize;
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' && matches!(chars.peek(), Some('/')) {
            // Doc comment: keep it (attr parsing ignores it) but neutralize
            // its text so commas/brackets inside do not confuse splitting.
            cur.push(' ');
            for sc in chars.by_ref() {
                if sc == '\n' {
                    break;
                }
            }
            continue;
        }
        match c {
            '(' | '[' | '{' | '<' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' | '}' | '>' => {
                // `->` never appears in field position; `>` only closes `<`.
                depth -= 1;
                cur.push(c);
            }
            '"' => {
                cur.push(c);
                while let Some(sc) = chars.next() {
                    cur.push(sc);
                    match sc {
                        '\\' => {
                            if let Some(esc) = chars.next() {
                                cur.push(esc);
                            }
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts.retain(|p| !p.trim().is_empty());
    parts
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_def(src: &str) -> Def {
    let mut c = Cursor::new(src);
    loop {
        c.skip_ws();
        match c.peek() {
            Some('#') => {
                c.read_attr();
            }
            Some(_) => {
                let word = c.read_ident();
                match word.as_str() {
                    "pub" => {
                        c.skip_ws();
                        if c.peek() == Some('(') {
                            c.read_balanced('(', ')');
                        }
                    }
                    "struct" => {
                        let name = c.read_ident();
                        c.skip_ws();
                        if c.peek() == Some('<') {
                            panic!("generic types are not supported by the vendored derive");
                        }
                        let fields = match c.peek() {
                            Some('{') => Fields::Named(parse_fields(&c.read_balanced('{', '}'))),
                            Some('(') => {
                                Fields::Tuple(split_top_commas(&c.read_balanced('(', ')')).len())
                            }
                            _ => Fields::Unit,
                        };
                        return Def {
                            name,
                            kind: Kind::Struct(fields),
                        };
                    }
                    "enum" => {
                        let name = c.read_ident();
                        c.skip_ws();
                        if c.peek() == Some('<') {
                            panic!("generic types are not supported by the vendored derive");
                        }
                        let body = c.read_balanced('{', '}');
                        return Def {
                            name,
                            kind: Kind::Enum(parse_variants(&body)),
                        };
                    }
                    "" => panic!("unexpected character in derive input"),
                    _ => {} // `union` unsupported; other words (e.g. nothing) skipped
                }
            }
            None => panic!("no struct or enum found in derive input"),
        }
    }
}

struct SerdeAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

fn parse_serde_attrs(attrs: &[String]) -> SerdeAttrs {
    let mut out = SerdeAttrs {
        skip: false,
        default: false,
        with: None,
    };
    for attr in attrs {
        let trimmed = attr.trim_start();
        if !trimmed.starts_with("serde") {
            continue;
        }
        let rest = trimmed["serde".len()..].trim_start();
        let inner = rest
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .unwrap_or("");
        for item in split_top_commas(inner) {
            let item = item.trim();
            if item == "skip" || item == "skip_serializing" || item == "skip_deserializing" {
                out.skip = true;
            } else if item == "default" {
                out.default = true;
            } else if let Some(rest) = item.strip_prefix("with") {
                let path = rest
                    .trim_start()
                    .strip_prefix('=')
                    .map(|p| p.trim())
                    .unwrap_or("");
                let path = path.trim_matches('"').trim();
                if !path.is_empty() {
                    out.with = Some(path.to_string());
                }
            }
        }
    }
    out
}

fn leading_attrs(c: &mut Cursor) -> Vec<String> {
    let mut attrs = Vec::new();
    loop {
        c.skip_ws();
        if c.peek() == Some('#') {
            attrs.push(c.read_attr());
        } else {
            return attrs;
        }
    }
}

fn parse_fields(body: &str) -> Vec<Field> {
    split_top_commas(body)
        .iter()
        .map(|chunk| {
            let mut c = Cursor::new(chunk);
            let attrs = leading_attrs(&mut c);
            let serde = parse_serde_attrs(&attrs);
            let mut name = c.read_ident();
            if name == "pub" {
                c.skip_ws();
                if c.peek() == Some('(') {
                    c.read_balanced('(', ')');
                }
                name = c.read_ident();
            }
            c.skip_ws();
            assert_eq!(c.bump(), Some(':'), "expected `:` after field `{name}`");
            let ty: String = c.chars[c.i..].iter().collect();
            Field {
                name,
                ty: ty.trim().to_string(),
                skip: serde.skip,
                default: serde.default,
                with: serde.with,
            }
        })
        .collect()
}

fn parse_variants(body: &str) -> Vec<Variant> {
    split_top_commas(body)
        .iter()
        .map(|chunk| {
            let mut c = Cursor::new(chunk);
            leading_attrs(&mut c);
            let name = c.read_ident();
            c.skip_ws();
            let fields = match c.peek() {
                Some('(') => Fields::Tuple(split_top_commas(&c.read_balanced('(', ')')).len()),
                Some('{') => Fields::Named(parse_fields(&c.read_balanced('{', '}'))),
                Some('=') => panic!("explicit discriminants are not supported"),
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

fn is_option(ty: &str) -> bool {
    let t = ty.trim_start();
    t.starts_with("Option ")
        || t.starts_with("Option<")
        || t.starts_with("Option :")
        || t == "Option"
        || t.starts_with("std :: option :: Option")
        || t.starts_with("core :: option :: Option")
}

// ---------------------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------------------

fn emit_serialize(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                s.push_str(&field_push(&f.name, &format!("self.{}", f.name), &f.with));
            }
            s.push_str("::serde::Content::Map(__fields)\n");
            s
        }
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)\n".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])\n", items.join(", "))
        }
        Kind::Struct(Fields::Unit) => "::serde::Content::Null\n".to_string(),
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(::std::vec![(::serde::Content::Str(::std::string::String::from(\"{vn}\")), ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(::serde::Content::Str(::std::string::String::from(\"{vn}\")), ::serde::Content::Seq(::std::vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __fields: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            inner.push_str(&field_push(&f.name, &f.name.clone(), &f.with));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} ::serde::Content::Map(::std::vec![(::serde::Content::Str(::std::string::String::from(\"{vn}\")), ::serde::Content::Map(__fields))]) }},\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}}}\n}}\n"
    )
}

/// One `__fields.push((name, value))` statement for serialization.
fn field_push(fname: &str, access: &str, with: &Option<String>) -> String {
    let value = match with {
        Some(module) => format!(
            "match {module}::serialize(&{access}, ::serde::content::ContentSerializer) {{ ::std::result::Result::Ok(__v) => __v, ::std::result::Result::Err(_) => ::serde::Content::Null }}"
        ),
        None => format!("::serde::Serialize::to_content(&{access})"),
    };
    format!(
        "__fields.push((::serde::Content::Str(::std::string::String::from(\"{fname}\")), {value}));\n"
    )
}

fn emit_deserialize(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, named_field_init(name, f, "__c")))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})\n",
                inits.join(", ")
            )
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))\n")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = ::serde::content::seq_items(__c, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))\n",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})\n"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(__payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __items = ::serde::content::seq_items(__payload, {n})?; ::std::result::Result::Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{}: {}", f.name, named_field_init(name, f, "__payload"))
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match ::serde::content::enum_parts(__c)? {{\n\
                 (__name, ::std::option::Option::None) => match __name {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::content::ContentError::msg(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 (__name, ::std::option::Option::Some(__payload)) => match __name {{\n{payload_arms}\
                 __other => ::std::result::Result::Err(::serde::content::ContentError::msg(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n}}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\nimpl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::content::ContentError> {{\n{body}}}\n}}\n"
    )
}

/// Initializer expression for one named field during deserialization.
fn named_field_init(type_name: &str, f: &Field, content_var: &str) -> String {
    if f.skip {
        return "::std::default::Default::default()".to_string();
    }
    let fname = &f.name;
    let found = match &f.with {
        Some(module) => {
            format!("{module}::deserialize(::serde::content::ContentDeserializer(__v))?")
        }
        None => "::serde::Deserialize::from_content(__v)?".to_string(),
    };
    let missing = if f.default || is_option(&f.ty) {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::content::ContentError::msg(\"missing field `{fname}` in {type_name}\"))"
        )
    };
    format!(
        "match ::serde::content::field({content_var}, \"{fname}\")? {{ ::std::option::Option::Some(__v) => {found}, ::std::option::Option::None => {missing} }}"
    )
}
