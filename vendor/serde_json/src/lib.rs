//! Minimal JSON format over the vendored `serde` content model.
//!
//! Supports exactly what the workspace needs: `to_string`, `to_string_pretty`,
//! `from_str`, and a `Result`/`Error` pair. Maps whose keys are strings or
//! integers render as JSON objects (integer keys are stringified, as real
//! serde_json does); maps with structured keys render as arrays of
//! `[key, value]` pairs, which the vendored `serde` accepts back.

use serde::content::ContentError;
use serde::{Content, Deserialize, DeserializeError, Serialize, Serializer};

/// JSON error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl DeserializeError for Error {
    fn from_content_error(e: ContentError) -> Self {
        Error(e.0)
    }
}

/// JSON result.
pub type Result<T> = std::result::Result<T, Error>;

struct JsonSerializer;

impl Serializer for JsonSerializer {
    type Ok = String;
    type Error = Error;
    fn serialize_content(self, content: Content) -> Result<String> {
        let mut out = String::new();
        write_content(&mut out, &content);
        Ok(out)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    value.serialize(JsonSerializer)
}

/// Serializes `value` to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T> {
    let content = parse(s)?;
    T::from_content(&content).map_err(Error::from_content_error)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if let Some(keys) = object_keys(entries) {
                out.push('{');
                for (i, (key, (_, v))) in keys.iter().zip(entries.iter()).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    write_content(out, v);
                }
                out.push('}');
            } else {
                // Structured keys: render as array of [key, value] pairs.
                out.push('[');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_content(out, k);
                    out.push(',');
                    write_content(out, v);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            if let Some(keys) = object_keys(entries) {
                out.push_str("{\n");
                for (i, (key, (_, v))) in keys.iter().zip(entries.iter()).enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    write_pretty(out, v, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            } else {
                write_content(out, c);
            }
        }
        other => write_content(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// If every key is a string or integer, returns the stringified keys.
fn object_keys(entries: &[(Content, Content)]) -> Option<Vec<String>> {
    entries
        .iter()
        .map(|(k, _)| match k {
            Content::Str(s) => Some(s.clone()),
            Content::U64(v) => Some(v.to_string()),
            Content::I64(v) => Some(v.to_string()),
            Content::Bool(b) => Some(b.to_string()),
            _ => None,
        })
        .collect()
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

/// Parses JSON text into a content tree.
pub fn parse(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.i)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bytes.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.i
            )))
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.bytes.get(self.i) {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.bytes.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.i))),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(Error::msg(format!("unexpected input at offset {}", self.i))),
        }
    }

    fn literal(&mut self, lit: &str, v: Content) -> Result<Content> {
        if self.bytes[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.i)))
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.i;
        if self.bytes.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.i) {
            match b {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.i])
            .map_err(|_| Error::msg("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.bytes.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.i += 1;
                                if self.bytes.get(self.i) != Some(&b'\\') {
                                    return Err(Error::msg("invalid surrogate pair"));
                                }
                                self.i += 1;
                                if self.bytes.get(self.i) != Some(&b'u') {
                                    return Err(Error::msg("invalid surrogate pair"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice — validating per character would rescan
                    // the remaining input each time (quadratic on large
                    // documents).
                    let start = self.i;
                    while let Some(&b) = self.bytes.get(self.i) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.i += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.i])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    out.push_str(chunk);
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    /// Reads 4 hex digits following `\u` (cursor on `u`).
    fn hex4(&mut self) -> Result<u32> {
        let start = self.i + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::msg("invalid unicode escape"))?;
        self.i = end - 1;
        Ok(v)
    }
}
