//! Minimal replacement for the `bytes` crate surface used by the MRT
//! codecs: `Bytes`, `BytesMut`, and the big-endian `Buf`/`BufMut` methods.
//! `Bytes` shares its backing store through `Arc`, so `slice`/`split_to`
//! and clones are zero-copy like the real crate.

use std::ops::RangeBounds;
use std::sync::Arc;

/// Cheaply cloneable, sliceable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; the alias is kept for API parity).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy subslice.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Current readable slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "get_u16 underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64 underflow");
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Fills `dst` from the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(&b.slice(1..3)[..], &[4, 5]);
    }
}
