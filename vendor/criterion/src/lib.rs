//! Minimal replacement for the `criterion` benchmarking surface this
//! workspace uses. It measures wall-clock time (median over samples) and
//! prints one line per benchmark — no statistics engine, plots, or saved
//! baselines. `CRITERION_SAMPLES` overrides the per-bench sample count.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier, `group/function/parameter` style.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median sample duration of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call keeps caches/allocators out of the first sample.
        black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn report(name: &str, d: Option<Duration>) {
    match d {
        Some(d) => println!("bench: {name:<55} time: {d:>12.3?}"),
        None => println!("bench: {name:<55} (no measurement)"),
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    report(name, b.last);
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: default_samples(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark function.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.samples, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 50);
        self
    }

    /// Overrides the measurement time (accepted for API parity; the stub
    /// keys off sample count instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.samples, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
